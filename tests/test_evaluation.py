"""Tests for metrics (§7.1), the runner, and reporting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.data.benchmark import load_benchmark
from repro.data.errors import ErrorInjector
from repro.evaluation.metrics import (
    detection_quality,
    evaluate_repairs,
    f1_score,
    recall_by_error_type,
)
from repro.evaluation.reporting import pivot_reports, render_table
from repro.evaluation.runner import run_matrix, run_system
from repro.evaluation.systems import BCleanSystem, GarfSystem
from repro.errors import EvaluationError


class TestF1:
    def test_harmonic_mean(self):
        assert f1_score(1.0, 1.0) == 1.0
        assert f1_score(0.5, 0.5) == 0.5
        assert f1_score(0.0, 0.0) == 0.0

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_bounds(self, p, r):
        f1 = f1_score(p, r)
        assert 0.0 <= f1 <= 1.0
        assert f1 <= max(p, r) + 1e-12


class TestEvaluateRepairs:
    @pytest.fixture
    def setting(self, customer_table):
        injection = ErrorInjector(rate=0.2, seed=1).inject(customer_table)
        return injection

    def test_perfect_cleaning(self, setting):
        q = evaluate_repairs(
            setting.dirty, setting.clean, setting.clean, setting.error_cells
        )
        assert q.precision == 1.0
        assert q.recall == 1.0
        assert q.f1 == 1.0
        assert q.n_correct_repairs == len(setting.errors)

    def test_no_cleaning(self, setting):
        q = evaluate_repairs(
            setting.dirty, setting.dirty.copy(), setting.clean,
            setting.error_cells,
        )
        assert q.precision == 0.0
        assert q.recall == 0.0
        assert q.n_modified == 0

    def test_wrong_repair_costs_precision(self, setting):
        cleaned = setting.clean.copy()
        # break a previously clean cell
        coords = [
            (i, a)
            for a in setting.clean.schema.names
            for i in range(setting.clean.n_rows)
            if (i, a) not in setting.error_cells
        ]
        i, a = coords[0]
        cleaned.set_cell(i, a, "GARBAGE")
        q = evaluate_repairs(
            setting.dirty, cleaned, setting.clean, setting.error_cells
        )
        assert q.precision < 1.0
        assert q.recall == 1.0

    def test_error_cells_derived_when_missing(self, setting):
        explicit = evaluate_repairs(
            setting.dirty, setting.clean, setting.clean, setting.error_cells
        )
        derived = evaluate_repairs(setting.dirty, setting.clean, setting.clean)
        assert derived.n_errors == explicit.n_errors

    def test_misaligned_rejected(self, setting):
        with pytest.raises(EvaluationError):
            evaluate_repairs(setting.dirty, setting.clean.head(2), setting.clean)

    def test_as_row_rounding(self, setting):
        q = evaluate_repairs(
            setting.dirty, setting.clean, setting.clean, setting.error_cells
        )
        row = q.as_row()
        assert row == {"precision": 1.0, "recall": 1.0, "f1": 1.0}


class TestRecallByType:
    def test_partial_fix(self, customer_table):
        injection = ErrorInjector(
            rate=0.3, types=("T", "M"), seed=3
        ).inject(customer_table)
        # fix only the missing values
        cleaned = injection.dirty.copy()
        for e in injection.errors:
            if e.error_type == "M":
                cleaned.set_cell(e.row, e.attribute, e.clean_value)
        by_type = recall_by_error_type(cleaned, injection)
        assert by_type.get("M", 0.0) == 1.0
        assert by_type.get("T", 1.0) == 0.0


class TestDetectionQuality:
    def test_perfect_detection(self, customer_table):
        injection = ErrorInjector(rate=0.2, seed=4).inject(customer_table)
        q = detection_quality(
            injection.dirty, injection.error_cells, injection.clean
        )
        assert q.precision == 1.0
        assert q.recall == 1.0

    def test_empty_detection(self, customer_table):
        injection = ErrorInjector(rate=0.2, seed=5).inject(customer_table)
        q = detection_quality(injection.dirty, set(), injection.clean)
        assert q.precision == 0.0


class TestRunner:
    def test_run_system_produces_report(self):
        inst = load_benchmark("hospital", n_rows=150, seed=0)
        report = run_system(GarfSystem(), inst)
        assert report.system == "Garf"
        assert report.dataset == "hospital"
        assert not report.failed
        assert report.exec_seconds > 0

    def test_failures_captured(self):
        inst = load_benchmark("hospital", n_rows=150, seed=0)

        class Exploder:
            name = "Exploder"

            def clean(self, instance):
                raise RuntimeError("boom")

        report = run_system(Exploder(), inst)
        assert report.failed
        assert "boom" in report.error
        assert report.as_row()["f1"] == "-"

    def test_run_matrix_shape(self):
        inst = load_benchmark("hospital", n_rows=150, seed=0)
        reports = run_matrix([GarfSystem()], [inst])
        assert len(reports) == 1

    def test_type_recall_collected(self):
        inst = load_benchmark("hospital", n_rows=150, seed=0)
        report = run_system(GarfSystem(), inst, with_type_recall=True)
        assert set(report.recall_by_type) <= {"T", "M", "I", "S"}


class TestReporting:
    def test_render_table(self):
        text = render_table(
            [{"a": 1, "b": 0.5}, {"a": 22, "b": 0.25}], title="T"
        )
        assert "T" in text
        assert "0.500" in text
        assert text.count("\n") >= 3

    def test_render_empty(self):
        assert "(no rows)" in render_table([], title="x")

    def test_pivot(self):
        inst = load_benchmark("hospital", n_rows=150, seed=0)
        reports = run_matrix([GarfSystem()], [inst])
        rows = pivot_reports(reports, "precision")
        assert rows[0]["system"] == "Garf"
        assert "hospital" in rows[0]


class TestBCleanSystemAdapter:
    def test_variants_names(self):
        assert BCleanSystem.basic().name == "BClean"
        assert BCleanSystem.without_ucs().name == "BClean-UC"
        assert BCleanSystem.pi().name == "BCleanPI"
        assert BCleanSystem.pip().name == "BCleanPIP"

    def test_end_to_end_on_small_hospital(self):
        inst = load_benchmark("hospital", n_rows=200, seed=0)
        system = BCleanSystem.pi()
        report = run_system(system, inst, catch_errors=False)
        assert report.quality.f1 > 0.5
        assert system.last_result is not None
        assert system.last_result.stats.repairs_made >= 0
