"""Tests for the repro.stats substrate (covariance, lasso, glasso, MI)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError
from repro.stats.covariance import (
    assert_positive_definite,
    correlation_from_covariance,
    empirical_covariance,
    nearest_positive_definite,
    shrunk_covariance,
)
from repro.stats.glasso import (
    graphical_lasso,
    precision_to_partial_correlation,
)
from repro.stats.infotheory import (
    conditional_mutual_information,
    entropy,
    g_statistic,
    joint_entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.stats.lasso import lasso_coordinate_descent, soft_threshold


class TestCovariance:
    def test_empirical_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 3))
        ours = empirical_covariance(x)
        theirs = np.cov(x, rowvar=False, bias=True)
        assert np.allclose(ours, theirs)

    def test_zero_samples_rejected(self):
        with pytest.raises(ValueError):
            empirical_covariance(np.empty((0, 3)))

    def test_one_dim_rejected(self):
        with pytest.raises(ValueError):
            empirical_covariance(np.ones(5))

    def test_shrunk_is_positive_definite(self):
        # A rank-deficient covariance becomes PD after shrinkage.
        x = np.ones((10, 4))
        cov = empirical_covariance(x)  # all zeros
        shrunk = shrunk_covariance(cov + np.eye(4) * 0, 0.5)
        # trace is zero here, so add a spike first
        cov[0, 0] = 1.0
        assert_positive_definite(shrunk_covariance(cov, 0.5))

    def test_shrinkage_bounds(self):
        with pytest.raises(ValueError):
            shrunk_covariance(np.eye(2), 1.5)

    def test_correlation_unit_diagonal(self):
        rng = np.random.default_rng(1)
        cov = empirical_covariance(rng.normal(size=(100, 4)))
        corr = correlation_from_covariance(cov)
        assert np.allclose(np.diag(corr), 1.0)
        assert np.all(np.abs(corr) <= 1.0 + 1e-9)

    def test_correlation_zero_variance(self):
        cov = np.zeros((2, 2))
        cov[0, 0] = 1.0
        corr = correlation_from_covariance(cov)
        assert corr[0, 1] == 0.0
        assert corr[1, 1] == 1.0

    def test_nearest_pd(self):
        m = np.array([[1.0, 2.0], [2.0, 1.0]])  # indefinite
        fixed = nearest_positive_definite(m)
        assert_positive_definite(fixed)

    def test_assert_pd_raises(self):
        with pytest.raises(ConvergenceError):
            assert_positive_definite(np.array([[0.0]]))


class TestSoftThreshold:
    @pytest.mark.parametrize(
        "x,t,expected", [(3.0, 1.0, 2.0), (-3.0, 1.0, -2.0), (0.5, 1.0, 0.0)]
    )
    def test_values(self, x, t, expected):
        assert soft_threshold(x, t) == expected

    @given(st.floats(-100, 100), st.floats(0, 50))
    def test_shrinks_toward_zero(self, x, t):
        y = soft_threshold(x, t)
        assert abs(y) <= abs(x)
        assert y * x >= 0  # never flips sign


class TestLasso:
    def test_zero_penalty_solves_linear_system(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(5, 5))
        gram = a @ a.T + np.eye(5)
        beta_true = rng.normal(size=5)
        linear = gram @ beta_true
        beta = lasso_coordinate_descent(gram, linear, alpha=0.0, tol=1e-10)
        assert np.allclose(beta, beta_true, atol=1e-6)

    def test_large_penalty_gives_zero(self):
        gram = np.eye(3)
        linear = np.array([0.5, -0.2, 0.1])
        beta = lasso_coordinate_descent(gram, linear, alpha=10.0)
        assert np.allclose(beta, 0.0)

    def test_penalty_increases_sparsity(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(10, 6))
        gram = a.T @ a / 10 + 0.1 * np.eye(6)
        linear = rng.normal(size=6)
        loose = lasso_coordinate_descent(gram, linear, alpha=0.01)
        tight = lasso_coordinate_descent(gram, linear, alpha=0.5)
        assert np.sum(tight != 0) <= np.sum(loose != 0)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            lasso_coordinate_descent(np.eye(2), np.ones(2), alpha=-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            lasso_coordinate_descent(np.eye(2), np.ones(3), alpha=0.1)


class TestGraphicalLasso:
    def test_recovers_sparsity_pattern(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(1000, 4))
        x[:, 1] = 0.9 * x[:, 0] + 0.3 * rng.normal(size=1000)
        cov = empirical_covariance(x)
        result = graphical_lasso(cov, alpha=0.1)
        assert result.converged
        # coupled pair keeps a strong precision entry
        assert abs(result.precision[0, 1]) > 0.5
        # independent pair is (near-)zeroed
        assert abs(result.precision[2, 3]) < 0.05

    def test_precision_is_inverse_of_covariance(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=(500, 3))
        cov = empirical_covariance(x)
        result = graphical_lasso(cov, alpha=0.05)
        product = result.covariance @ result.precision
        assert np.allclose(product, np.eye(3), atol=0.05)

    def test_alpha_zero_is_plain_inverse(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(300, 3))
        cov = empirical_covariance(x)
        result = graphical_lasso(cov, alpha=0.0)
        assert np.allclose(result.precision @ result.covariance, np.eye(3), atol=1e-6)

    def test_single_variable(self):
        result = graphical_lasso(np.array([[2.0]]), alpha=0.1)
        assert result.precision[0, 0] == pytest.approx(0.5, rel=0.01)

    def test_asymmetric_rejected(self):
        with pytest.raises(ValueError):
            graphical_lasso(np.array([[1.0, 0.5], [0.2, 1.0]]), alpha=0.1)

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            graphical_lasso(np.eye(2), alpha=-0.1)

    def test_partial_correlation_unit_diagonal(self):
        rng = np.random.default_rng(7)
        cov = empirical_covariance(rng.normal(size=(200, 3)))
        result = graphical_lasso(cov, alpha=0.05)
        partial = precision_to_partial_correlation(result.precision)
        assert np.allclose(np.diag(partial), 1.0)


class TestInfoTheory:
    def test_entropy_uniform(self):
        import math

        assert entropy(["a", "b"] * 50) == pytest.approx(math.log(2))

    def test_entropy_constant(self):
        assert entropy(["a"] * 10) == 0.0
        assert entropy([]) == 0.0

    def test_mutual_information_identical(self):
        xs = ["a", "b", "c"] * 20
        assert mutual_information(xs, xs) == pytest.approx(entropy(xs))

    def test_mutual_information_independent(self):
        xs = ["a", "b"] * 50
        ys = ["x"] * 50 + ["y"] * 50
        assert mutual_information(xs, ys) < 0.02

    def test_joint_entropy_length_mismatch(self):
        with pytest.raises(ValueError):
            joint_entropy(["a"], ["b", "c"])

    def test_cmi_chain(self):
        # X -> Z -> Y: conditioning on Z removes dependence.
        import random

        rng = random.Random(8)
        xs, ys, zs = [], [], []
        for _ in range(500):
            x = rng.choice("ab")
            z = x  # z copies x
            y = z  # y copies z
            xs.append(x)
            zs.append(z)
            ys.append(y)
        assert conditional_mutual_information(xs, ys, zs) == pytest.approx(0.0)
        assert mutual_information(xs, ys) > 0.5

    def test_g_statistic_dof(self):
        xs = ["a", "b"] * 50
        ys = ["x", "y"] * 50
        g, dof = g_statistic(xs, ys)
        assert dof == 1
        assert g >= 0.0

    def test_normalized_mi_bounds(self):
        xs = ["a", "b", "c"] * 10
        assert normalized_mutual_information(xs, xs) == pytest.approx(1.0)
        assert normalized_mutual_information(xs, ["k"] * 30) == 0.0
