"""Tests for the §7.1 error injector."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.errors import (
    ALL_TYPES,
    INCONSISTENCY,
    MISSING,
    SWAP,
    TYPO,
    ErrorInjector,
    inject_typo,
)
from repro.dataset.diff import cells_equal
from repro.dataset.schema import Schema
from repro.dataset.table import Table, is_null
from repro.errors import ErrorInjectionError
from repro.text.levenshtein import levenshtein


class TestInjectTypo:
    @given(st.text(alphabet="abc123", min_size=1, max_size=10), st.integers(0, 1000))
    @settings(max_examples=50)
    def test_typo_is_one_edit_away(self, value, seed):
        import random

        rng = random.Random(seed)
        out = inject_typo(value, rng)
        assert levenshtein(str(value), str(out)) == 1

    def test_empty_string(self):
        import random

        out = inject_typo("", random.Random(0))
        assert len(str(out)) == 1


class TestInjectorValidation:
    def test_rate_bounds(self):
        with pytest.raises(ErrorInjectionError):
            ErrorInjector(rate=1.5)
        with pytest.raises(ErrorInjectionError):
            ErrorInjector(rate=-0.1)

    def test_unknown_type(self):
        with pytest.raises(ErrorInjectionError):
            ErrorInjector(rate=0.1, types=("X",))

    def test_empty_types(self):
        with pytest.raises(ErrorInjectionError):
            ErrorInjector(rate=0.1, types=())

    def test_all_protected_rejected(self, customer_table):
        inj = ErrorInjector(rate=0.1, protected=customer_table.schema.names)
        with pytest.raises(ErrorInjectionError):
            inj.inject(customer_table)


class TestInjection:
    def test_deterministic(self, customer_table):
        a = ErrorInjector(rate=0.2, seed=7).inject(customer_table)
        b = ErrorInjector(rate=0.2, seed=7).inject(customer_table)
        assert a.dirty == b.dirty
        assert a.errors == b.errors

    def test_rate_respected(self, customer_table):
        result = ErrorInjector(rate=0.25, seed=1).inject(customer_table)
        target = round(0.25 * customer_table.n_cells)
        assert abs(len(result.errors) - target) <= target  # swaps may drop pairs
        assert 0 < len(result.errors) <= target + 1

    def test_clean_table_unmodified(self, customer_table):
        original = customer_table.copy()
        ErrorInjector(rate=0.3, seed=2).inject(customer_table)
        assert customer_table == original

    def test_provenance_matches_tables(self, customer_table):
        result = ErrorInjector(rate=0.3, seed=3).inject(customer_table)
        for e in result.errors:
            assert cells_equal(result.clean.cell(e.row, e.attribute), e.clean_value)
            assert cells_equal(result.dirty.cell(e.row, e.attribute), e.dirty_value)
            assert not cells_equal(e.clean_value, e.dirty_value)

    def test_untouched_cells_identical(self, customer_table):
        result = ErrorInjector(rate=0.3, seed=4).inject(customer_table)
        error_cells = result.error_cells
        for i in range(customer_table.n_rows):
            for a in customer_table.schema.names:
                if (i, a) not in error_cells:
                    assert cells_equal(
                        result.dirty.cell(i, a), result.clean.cell(i, a)
                    )

    def test_missing_type_produces_nulls(self, customer_table):
        result = ErrorInjector(rate=0.4, types=(MISSING,), seed=5).inject(
            customer_table
        )
        assert result.errors
        for e in result.errors:
            assert e.error_type == MISSING
            assert is_null(e.dirty_value)

    def test_typo_type_one_edit(self, customer_table):
        result = ErrorInjector(rate=0.4, types=(TYPO,), seed=6).inject(
            customer_table
        )
        for e in result.errors:
            assert levenshtein(str(e.clean_value), str(e.dirty_value)) == 1

    def test_inconsistency_values_are_valid_elsewhere(self, customer_table):
        result = ErrorInjector(rate=0.4, types=(INCONSISTENCY,), seed=7).inject(
            customer_table
        )
        all_values = {
            str(v)
            for col in customer_table.columns
            for v in col
            if not is_null(v)
        }
        for e in result.errors:
            assert str(e.dirty_value) in all_values

    def test_swap_same_domain_pairs(self, customer_table):
        result = ErrorInjector(rate=0.6, types=(SWAP,), seed=8).inject(
            customer_table
        )
        # swaps come in pairs within one attribute
        assert len(result.errors) % 2 == 0
        for e in result.errors:
            assert e.error_type == SWAP

    def test_swap_cross_domain(self, customer_table):
        result = ErrorInjector(
            rate=0.6, types=(SWAP,), seed=9, swap_cross_domain=True
        ).inject(customer_table)
        # cross-domain swaps touch two attributes of the same row
        rows_touched = {}
        for e in result.errors:
            rows_touched.setdefault(e.row, []).append(e.attribute)
        assert any(len(attrs) >= 2 for attrs in rows_touched.values())

    def test_protected_attributes_untouched(self, customer_table):
        result = ErrorInjector(
            rate=0.5, seed=10, protected=("Name",)
        ).inject(customer_table)
        assert all(e.attribute != "Name" for e in result.errors)

    def test_counts_by_type(self, customer_table):
        result = ErrorInjector(rate=0.4, seed=11).inject(customer_table)
        counts = result.counts_by_type()
        assert sum(counts.values()) == len(result.errors)
        assert set(counts) <= set(ALL_TYPES)

    def test_noise_rate_property(self, customer_table):
        result = ErrorInjector(rate=0.25, seed=12).inject(customer_table)
        assert result.noise_rate == pytest.approx(
            len(result.errors) / customer_table.n_cells
        )

    def test_errors_of_type(self, customer_table):
        result = ErrorInjector(rate=0.4, seed=13).inject(customer_table)
        typos = result.errors_of_type(TYPO)
        assert all(e.error_type == TYPO for e in typos)
