"""Tests for repro.constraints.induction (regex UCs from examples).

Inductions are checked by behaviour: the induced Pattern must accept the
clean format(s) it was shown, reject the error shapes the paper's error
injector produces (typos, format breaks), and survive dirty input by
discarding rare masks.
"""

import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constraints.builtin import MaxLength, MinLength, NotNull, Pattern
from repro.constraints.induction import (
    InducedProfile,
    induce_pattern,
    induce_registry,
    tokenize_runs,
)
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import ConstraintSpecError


class TestTokenizeRuns:
    def test_zip_code(self):
        runs = tokenize_runs("35150")
        assert [(r.symbol, r.length) for r in runs] == [("9", 5)]

    def test_mixed_value(self):
        runs = tokenize_runs("Johnny.R")
        assert [(r.symbol, r.length) for r in runs] == [
            ("A", 1),
            ("a", 5),
            (".", 1),
            ("A", 1),
        ]

    def test_time_format(self):
        runs = tokenize_runs("7:10 a.m.")
        symbols = "".join(r.symbol for r in runs)
        assert symbols == "9:9sa.a."

    def test_empty_string(self):
        assert tokenize_runs("") == ()


class TestInducePattern:
    def test_fixed_width_digits(self):
        profile = induce_pattern(["35150", "35960", "10001", "94105"])
        assert profile.regex == "[0-9]{5}"
        assert profile.pattern().check("90210")
        assert not profile.pattern().check("9021")
        assert not profile.pattern().check("9021x")

    def test_variable_width_generalised(self):
        profile = induce_pattern(["12", "1234", "123"], min_support=1)
        assert profile.regex == "[0-9]{2,4}"

    def test_rare_error_masks_dropped(self):
        """One typo'd value among many clean ones must not widen the UC."""
        values = ["35150"] * 20 + ["3515x"]
        profile = induce_pattern(values)
        assert profile.regex == "[0-9]{5}"
        assert not profile.pattern().check("3515x")

    def test_alternation_for_two_formats(self):
        values = ["7:10 a.m."] * 5 + ["11:45 p.m."] * 5
        profile = induce_pattern(values)
        pattern = profile.pattern()
        assert pattern.check("7:10 a.m.")
        assert pattern.check("11:45 p.m.")
        assert not pattern.check("7:10")

    def test_punctuation_is_escaped(self):
        profile = induce_pattern(["1.5", "2.7", "3.9"])
        assert profile.pattern().check("4.2")
        assert not profile.pattern().check("4x2")  # '.' must not be a wildcard

    def test_fallback_on_free_text(self):
        # structurally heterogeneous values: every mask is unique, so no
        # small branch set can reach the coverage target
        values = [
            "O'Brien & Sons",
            "42 Main St.",
            "flat#7",
            "P.O. Box 12",
            "c/o  Smith",
            "(unit) 9-B",
        ]
        profile = induce_pattern(values, coverage=0.95, max_branches=2)
        assert profile.fallback
        assert all(profile.pattern().check(v) for v in values)

    def test_null_handling(self):
        profile = induce_pattern(["123", None, "456"], min_support=1)
        assert profile.saw_null
        constraints = profile.constraints()
        assert not any(isinstance(c, NotNull) for c in constraints)

    def test_no_nulls_yields_notnull(self):
        profile = induce_pattern(["123", "456"], min_support=1)
        assert any(isinstance(c, NotNull) for c in profile.constraints())

    def test_length_bounds(self):
        profile = induce_pattern(["ab", "abcd", "abc"], min_support=1)
        assert profile.min_length == 2
        assert profile.max_length == 4
        kinds = {type(c) for c in profile.constraints()}
        assert MinLength in kinds and MaxLength in kinds

    def test_all_null_rejected(self):
        with pytest.raises(ConstraintSpecError, match="zero non-null"):
            induce_pattern([None, None])

    def test_bad_coverage_rejected(self):
        with pytest.raises(ConstraintSpecError, match="coverage"):
            induce_pattern(["a"], coverage=0.0)

    def test_bad_min_support_rejected(self):
        with pytest.raises(ConstraintSpecError, match="min_support"):
            induce_pattern(["a"], min_support=0)

    def test_regex_is_always_compilable(self):
        weird = ["a(b)c", "a[b]c", "a{b}c", "a+b*c?", "a|b\\c"]
        profile = induce_pattern(weird, min_support=1, max_branches=5)
        assert isinstance(profile, InducedProfile)
        re.compile(profile.regex)

    @given(
        width=st.integers(1, 8),
        count=st.integers(3, 30),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_induced_pattern_accepts_training_majority(self, width, count, seed):
        """Whatever is induced must accept every value of the dominant mask."""
        import random

        rng = random.Random(seed)
        values = [
            "".join(rng.choice("0123456789") for _ in range(width))
            for _ in range(count)
        ]
        profile = induce_pattern(values)
        pattern = profile.pattern()
        assert all(pattern.check(v) for v in values)


class TestInduceRegistry:
    def test_registry_covers_all_columns(self):
        schema = Schema.of("zip:categorical", "state:categorical")
        rows = [["35150", "CA"], ["35960", "NY"], ["10001", "TX"]]
        table = Table.from_rows(schema, rows)
        registry = induce_registry(table, min_support=1)
        assert registry.check_cell("zip", "90210")
        assert not registry.check_cell("zip", "9021x")
        assert registry.check_cell("state", "WA")
        assert not registry.check_cell("state", "Cal")

    def test_skips_all_null_columns(self):
        schema = Schema.of("a:categorical", "b:categorical")
        table = Table.from_rows(schema, [["x", None], ["y", None]])
        registry = induce_registry(table, min_support=1)
        assert registry.constraints_for("a")
        assert not registry.constraints_for("b")

    def test_induced_ucs_flag_paper_example_errors(self):
        """The Hospital-style five-digit zip UC from §7.3.1: the induced
        pattern must reject the '1xx18' candidate the paper filters."""
        values = ["35150"] * 30 + ["35960"] * 20
        profile = induce_pattern(values)
        assert not profile.pattern().check("1xx18")

    def test_restricting_attributes(self):
        schema = Schema.of("a:categorical", "b:categorical")
        table = Table.from_rows(schema, [["1", "x"], ["2", "y"]])
        registry = induce_registry(table, attributes=["a"], min_support=1)
        assert registry.constraints_for("a")
        assert not registry.constraints_for("b")


class TestEndToEndWithEngine:
    def test_induced_registry_feeds_bclean(self):
        """Induce UCs from the clean sample, clean the dirty table —
        the full no-expert workflow."""
        import random

        from repro.core.config import BCleanConfig
        from repro.core.engine import BClean
        from repro.data.errors import ErrorInjector

        rng = random.Random(5)
        schema = Schema.of("code:categorical", "label:categorical")
        codes = [f"{rng.randrange(10000, 99999)}" for _ in range(6)]
        rows = []
        for _ in range(150):
            code = rng.choice(codes)
            rows.append([code, f"L{code[-2:]}"])
        clean = Table.from_rows(schema, rows)
        injection = ErrorInjector(rate=0.08, seed=6, types=("T",)).inject(clean)

        registry = induce_registry(clean)
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(injection.dirty)
        result = engine.clean()
        assert result.stats.repairs_made > 0
