"""The columnar + sharded fit must be invisible in every artefact.

The coded fit pipeline — CPT counting from ``TableEncoding`` columns,
structure scores from coded family counts, and the ``fit_executor``
sharding of pair builds / CPT count passes — must produce CPTs, learned
DAGs, and final ``CleaningResult``\\ s *byte-identical* to the scalar
dict-walking oracle, across worker backends, job counts, and datasets
with NULLs and (after a foreign clean) unseen-code columns.  The matrix
mirrors ``test_exec_parallel.py``; on top of it the coded G²/MI kernels
get old-vs-new regression pins and the exec-level fit job gets unit
coverage.
"""

from __future__ import annotations

import math
import pickle
from collections import Counter

import numpy as np
import pytest

from repro.bayesnet.cpt import cell_key
from repro.bayesnet.dag import DAG
from repro.bayesnet.model import DiscreteBayesNet
from repro.bayesnet.structure.chowliu import chow_liu_tree
from repro.bayesnet.structure.hillclimb import hill_climb
from repro.bayesnet.structure.mmhc import g2_statistic, mmhc
from repro.bayesnet.structure.pc import pc_algorithm
from repro.bayesnet.structure.scores import make_score
from repro.cli import build_parser, _engine_config
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import CleaningError
from repro.exec import FitJobState, FitTasks, plan_shards, run_fit_job
from repro.exec.fit import CPT_TASKS, PAIR_TASKS
from repro.stats.infotheory import joint_code_counts, mutual_information

pytestmark = pytest.mark.fast

FIT_BACKENDS = ("serial", "thread", "process")


def cpt_state(cpt):
    """The complete estimation state of a CPT, including dict insertion
    order — equality here means the scalar and coded fits are
    indistinguishable by any query."""
    return (
        cpt.variable,
        cpt.parent_names,
        cpt.alpha,
        [(cfg, list(cnt.items())) for cfg, cnt in cpt._config_counts.items()],
        list(cpt._config_totals.items()),
        list(cpt._marginal.items()),
        cpt._n,
    )


def repair_bytes(result):
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


@pytest.fixture(scope="module")
def hospital():
    return load_benchmark("hospital", n_rows=60, seed=0)


@pytest.fixture(scope="module")
def null_table():
    """A small table exercising real NULLs, null-like strings, and a
    three-parent family."""
    rows = [
        ["a", None, "x", "1"],
        ["a", "u", "x", "1"],
        ["b", "u", None, "2"],
        ["a", None, "x", "1"],
        [None, "v", "y", "2"],
        ["b", "null", "y", "2"],
        ["a", "u", "x", None],
    ]
    return Table.from_rows(Schema.of("p:text", "q:text", "r:text", "c:text"), rows)


# -- CPT counting ---------------------------------------------------------------


def test_cpts_byte_identical_on_learned_dag(hospital):
    table = hospital.dirty
    dag = hill_climb(table).dag
    scalar = DiscreteBayesNet.fit(table, dag, alpha=0.1)
    coded = DiscreteBayesNet.fit_columnar(
        table, dag, alpha=0.1, encoding=table.encode()
    )
    for node in dag.nodes:
        assert cpt_state(scalar.cpts[node]) == cpt_state(coded.cpts[node])


def test_cpts_byte_identical_with_nulls_and_multiparent(null_table):
    dag = DAG(["p", "q", "r", "c"])
    dag.add_edge("p", "c")
    dag.add_edge("q", "c")
    dag.add_edge("r", "c")
    dag.add_edge("p", "q")
    scalar = DiscreteBayesNet.fit(null_table, dag, alpha=0.5)
    coded = DiscreteBayesNet.fit_columnar(
        null_table, dag, alpha=0.5, encoding=null_table.encode()
    )
    for node in dag.nodes:
        assert cpt_state(scalar.cpts[node]) == cpt_state(coded.cpts[node])


def test_single_parent_pair_reuse_matches_direct_count(hospital):
    """The 1-parent shortcut (re-slicing the co-occurrence PairArrays)
    must equal the direct fused-count pass."""
    from repro.core.cooccurrence import CooccurrenceIndex

    table = hospital.dirty
    enc = table.encode()
    cooc = CooccurrenceIndex(table, encoding=enc)
    names = table.schema.names
    dag = DAG(names)
    dag.add_edge(names[0], names[1])  # one 1-parent family
    with_cooc = DiscreteBayesNet.fit_columnar(
        table, dag, alpha=0.1, encoding=enc, cooc=cooc
    )
    without = DiscreteBayesNet.fit_columnar(table, dag, alpha=0.1, encoding=enc)
    scalar = DiscreteBayesNet.fit(table, dag, alpha=0.1)
    for node in dag.nodes:
        assert cpt_state(with_cooc.cpts[node]) == cpt_state(without.cpts[node])
        assert cpt_state(with_cooc.cpts[node]) == cpt_state(scalar.cpts[node])


# -- structure learning ---------------------------------------------------------


@pytest.mark.parametrize("learner", ("hillclimb", "mmhc", "chowliu", "pc"))
def test_learned_dag_identical_scalar_vs_coded(hospital, learner):
    table = hospital.dirty
    enc = table.encode()
    if learner == "hillclimb":
        a, b = hill_climb(table), hill_climb(table, encoding=enc)
        assert a.score == b.score
        da, db = a.dag, b.dag
    elif learner == "mmhc":
        a, b = mmhc(table), mmhc(table, encoding=enc)
        assert a.score == b.score
        da, db = a.dag, b.dag
    elif learner == "chowliu":
        da, db = chow_liu_tree(table), chow_liu_tree(table, encoding=enc)
    else:
        a, b = pc_algorithm(table), pc_algorithm(table, encoding=enc)
        assert a.n_tests == b.n_tests
        da, db = a.dag, b.dag
    assert sorted(da.edges()) == sorted(db.edges())


@pytest.mark.parametrize("score_name", ("bic", "k2", "bdeu"))
def test_family_scores_bit_identical(hospital, score_name):
    table = hospital.dirty
    names = table.schema.names
    scalar = make_score(score_name, table)
    coded = make_score(score_name, table, encoding=table.encode())
    families = [
        (names[0], ()),
        (names[1], (names[0],)),
        (names[2], (names[0], names[3])),
        (names[4], (names[1], names[2], names[5])),
    ]
    for node, parents in families:
        assert scalar.family(node, parents) == coded.family(node, parents)


def test_scores_fall_back_without_matching_encoding(hospital):
    """An encoding that no longer matches the table must be ignored, not
    trusted (mutation after encode)."""
    instance = load_benchmark("hospital", n_rows=40, seed=1)
    table = instance.dirty
    enc = table.encode()
    table.set_cell(0, table.schema.names[0], "mutant")
    scorer = make_score("bic", table, encoding=enc)
    assert scorer.encoding is None
    reference = make_score("bic", table)
    node, parents = table.schema.names[1], (table.schema.names[0],)
    assert scorer.family(node, parents) == reference.family(node, parents)


# -- regression pins: old-vs-new MI / G² ----------------------------------------


def test_mi_matches_counter_reference_on_hospital(hospital):
    """The single coded-count MI must reproduce the Counter-walking
    formula it replaced, exactly (same accumulation order)."""
    table = hospital.dirty
    names = table.schema.names

    def counter_entropy(values):
        n = len(values)
        h = 0.0
        for c in Counter(values).values():
            p = c / n
            h -= p * math.log(p)
        return h

    for a, b in [(names[0], names[1]), (names[2], names[5]), (names[3], names[4])]:
        xs = [cell_key(v) for v in table.column(a)]
        ys = [cell_key(v) for v in table.column(b)]
        reference = max(
            0.0,
            counter_entropy(xs)
            + counter_entropy(ys)
            - counter_entropy(list(zip(xs, ys))),
        )
        assert mutual_information(xs, ys) == reference


def test_g2_coded_matches_reference_on_hospital(hospital):
    table = hospital.dirty
    enc = table.encode()
    names = table.schema.names
    cases = [
        (names[0], names[1], ()),
        (names[2], names[3], (names[0],)),
        (names[1], names[5], (names[2], names[4])),
    ]
    for x, y, cond in cases:
        ref_g2, ref_df = g2_statistic(table, x, y, cond)
        fast_g2, fast_df = g2_statistic(table, x, y, cond, encoding=enc)
        assert fast_df == ref_df
        assert fast_g2 == pytest.approx(ref_g2, rel=1e-9, abs=1e-9)


# -- end-to-end: fit backends must be invisible ---------------------------------


@pytest.fixture(scope="module")
def reference(hospital):
    """Serial columnar-fit clean every other configuration is pinned to."""
    engine = BClean(
        BCleanConfig.pi(structure="hillclimb"), hospital.constraints
    )
    engine.fit(hospital.dirty)
    return engine, engine.clean()


def _run(instance, **knobs):
    engine = BClean(
        BCleanConfig.pi(structure="hillclimb", **knobs), instance.constraints
    )
    engine.fit(instance.dirty)
    return engine, engine.clean()


def test_scalar_oracle_identical(hospital, reference):
    ref_engine, ref = reference
    engine, result = _run(hospital, use_columnar=False)
    assert engine.dag == ref_engine.dag
    for node in engine.bn.dag.nodes:
        assert cpt_state(engine.bn.cpts[node]) == cpt_state(
            ref_engine.bn.cpts[node]
        )
    assert [
        (r.row, r.attribute, r.old_value, r.new_value) for r in result.repairs
    ] == [(r.row, r.attribute, r.old_value, r.new_value) for r in ref.repairs]


@pytest.mark.parametrize("n_jobs", (1, 2, 3))
@pytest.mark.parametrize("fit_executor", ("serial", "thread"))
def test_fit_backend_matrix_byte_identical(hospital, reference, fit_executor, n_jobs):
    ref_engine, ref = reference
    engine, result = _run(hospital, fit_executor=fit_executor, n_jobs=n_jobs)
    assert engine.dag == ref_engine.dag
    for node in engine.bn.dag.nodes:
        assert cpt_state(engine.bn.cpts[node]) == cpt_state(
            ref_engine.bn.cpts[node]
        )
    assert repair_bytes(result) == repair_bytes(ref)
    if fit_executor != "serial":
        assert result.diagnostics["fit_exec"]["fit_executor"] == fit_executor


@pytest.mark.slow
@pytest.mark.parametrize("mode_factory", (BCleanConfig.pip, BCleanConfig.basic))
def test_process_fit_backend_other_modes(hospital, mode_factory):
    """The heaviest matrix cases: process pools across inference modes."""

    def run(**knobs):
        engine = BClean(
            mode_factory(structure="mmhc", **knobs), hospital.constraints
        )
        engine.fit(hospital.dirty)
        return engine, engine.clean()

    ref_engine, ref = run()
    engine, result = run(fit_executor="process", n_jobs=2)
    assert engine.dag == ref_engine.dag
    for node in engine.bn.dag.nodes:
        assert cpt_state(engine.bn.cpts[node]) == cpt_state(
            ref_engine.bn.cpts[node]
        )
    assert repair_bytes(result) == repair_bytes(ref)


def test_foreign_table_after_parallel_fit_matches_oracle(hospital):
    """Unseen-code columns: a foreign table cleaned after a sharded fit
    must match the scalar-oracle result (incremental encoding mints
    codes past every fit-time cardinality)."""
    foreign = hospital.dirty.copy()
    names = foreign.schema.names
    foreign.set_cell(3, names[1], "UNSEEN-VALUE-A")
    foreign.set_cell(9, names[1], "UNSEEN-VALUE-B")
    foreign.set_cell(5, names[2], None)

    engine, _ = _run(hospital, fit_executor="thread", n_jobs=2)
    result = engine.clean(foreign)
    assert result.diagnostics["exec"]["incremental_encoding"] is True

    oracle_engine, _ = _run(hospital, use_columnar=False)
    oracle = oracle_engine.clean(foreign)
    assert [
        (r.row, r.attribute, r.old_value, r.new_value) for r in result.repairs
    ] == [
        (r.row, r.attribute, r.old_value, r.new_value) for r in oracle.repairs
    ]


def test_fit_diagnostics_surfaced(hospital):
    engine, result = _run(hospital, fit_executor="thread", n_jobs=2)
    diag = result.diagnostics["fit_exec"]
    assert diag["fit_executor"] == "thread"
    assert diag["pair_tasks"] == len(hospital.dirty.schema.names) * (
        len(hospital.dirty.schema.names) - 1
    ) // 2
    assert diag["pair_shards"] >= 1


def test_merged_composition_keeps_scalar_fit(hospital):
    """Merged-node compositions cannot ride the coded fit (BN nodes are
    not table attributes) and must silently take the oracle path even
    under a parallel fit_executor."""
    from repro.core.composition import AttributeComposition

    names = hospital.dirty.schema.names
    comp = AttributeComposition(names)
    comp.merge([names[0], names[1]])
    engine = BClean(
        BCleanConfig.pi(fit_executor="thread"), hospital.constraints
    )
    engine.fit(hospital.dirty, composition=comp)
    result = engine.clean()
    assert "fit_exec" not in result.diagnostics
    assert result.cleaned.n_rows == hospital.dirty.n_rows


# -- config / CLI ---------------------------------------------------------------


def test_fit_executor_validated():
    with pytest.raises(CleaningError):
        BCleanConfig(fit_executor="warp")


def test_cli_fit_executor_wired():
    parser = build_parser()
    args = parser.parse_args(
        ["clean", "in.csv", "-o", "out.csv", "--fit-executor", "process"]
    )
    assert _engine_config(args).fit_executor == "process"
    args = parser.parse_args(["clean", "in.csv", "-o", "out.csv"])
    assert _engine_config(args).fit_executor == "serial"


# -- exec-level units -----------------------------------------------------------


PAIR_TASK_LIST = [(0, 1), (0, 2), (1, 2)]
CPT_TASK_LIST = [(0, ()), (3, (0, 1))]


def _job_state(hospital):
    table = hospital.dirty
    enc = table.encode()
    names = table.schema.names
    columns = [enc.codes(a) for a in names]
    cards = [enc.card(a) for a in names]
    weights = np.ones(table.n_rows, dtype=np.float64)
    return FitJobState(columns, cards, weights)


def test_fit_job_backends_identical_payloads(hospital):
    state = _job_state(hospital)
    base_pairs, base_cpts, _ = run_fit_job(
        state, PAIR_TASK_LIST, CPT_TASK_LIST, "serial", 1
    )
    for executor in ("thread", "process"):
        pairs, cpts, diag = run_fit_job(
            state, PAIR_TASK_LIST, CPT_TASK_LIST, executor, 2
        )
        assert diag["fit_executor"] == executor
        for (f_a, r_a), (f_b, r_b) in zip(base_pairs, pairs):
            assert np.array_equal(f_a.keys, f_b.keys)
            assert np.array_equal(f_a.raw, f_b.raw)
            assert np.array_equal(f_a.weighted, f_b.weighted)
            assert np.array_equal(r_a.keys, r_b.keys)
        for (u_a, c_a, fr_a), (u_b, c_b, fr_b) in zip(base_cpts, cpts):
            assert all(np.array_equal(x, y) for x, y in zip(u_a, u_b))
            assert np.array_equal(c_a, c_b)
            assert np.array_equal(fr_a, fr_b)


def test_fit_job_state_pickle_round_trip(hospital):
    state = _job_state(hospital)
    tasks = FitTasks(tuple(PAIR_TASK_LIST), tuple(CPT_TASK_LIST))
    work = [
        (PAIR_TASKS, "__pairs__", np.arange(3), np.ones(3)),
        (CPT_TASKS, "__cpts__", np.arange(2), np.ones(2)),
    ]
    plan = plan_shards(work, 1)
    restored = pickle.loads(pickle.dumps(state))
    for shard in plan.shards:
        direct = state.run_shard(shard, tasks)
        rerun = restored.run_shard(shard, tasks)
        assert direct.column == rerun.column
        for a, b in zip(direct.payloads, rerun.payloads):
            if direct.column == PAIR_TASKS:
                assert np.array_equal(a[0].keys, b[0].keys)
                assert np.array_equal(a[0].weighted, b[0].weighted)
            else:
                assert np.array_equal(a[1], b[1])


def test_fit_job_unknown_kind_rejected(hospital):
    from repro.exec.planner import Shard

    state = _job_state(hospital)
    with pytest.raises(CleaningError, match="unknown fit task kind"):
        state.run_shard(Shard(0, 7, "__nope__", np.arange(1)), FitTasks())


def test_g2_codes_huge_codes_no_overflow():
    """Conditioning codes near the int64 fuse limit must be densified,
    not wrapped (regression: silent stratum collisions)."""
    from repro.bayesnet.structure.mmhc import g2_statistic_codes

    big = 2**32
    rng = np.random.default_rng(7)
    n = 60
    x = rng.integers(0, 3, n).astype(np.int64)
    y = rng.integers(0, 3, n).astype(np.int64)
    z1 = rng.integers(0, 2, n).astype(np.int64) * big
    z2 = rng.integers(0, 2, n).astype(np.int64) * big
    got = g2_statistic_codes(x, y, [z1, z2])
    # Densified codes are the ground truth — same strata, small ids.
    want = g2_statistic_codes(x, y, [z1 // big, z2 // big])
    assert got[1] == want[1]
    assert got[0] == pytest.approx(want[0], rel=1e-12)


def test_joint_code_counts_wide_span_fallback():
    """Joint spaces past the int64 fuse limit take the row-wise unique
    path and still count correctly."""
    big = 2**32
    cols = [
        np.array([0, big, 0, big], dtype=np.int64),
        np.array([big, 0, big, 0], dtype=np.int64),
        np.array([1, 2, 1, 3], dtype=np.int64),
    ]
    uniq, counts, first = joint_code_counts(cols)
    seen = {
        (int(a), int(b), int(c)): int(n)
        for a, b, c, n in zip(*uniq, counts)
    }
    assert seen == {(0, big, 1): 2, (big, 0, 2): 1, (big, 0, 3): 1}
    assert first.tolist() == [0, 1, 3]
