"""Tests for repro.constraints (UCs, FDs, DCs, registry)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints.base import Conjunction, Disjunction, Negation, Predicate
from repro.constraints.builtin import (
    CLOCK_12H,
    MaxLength,
    MaxValue,
    MinLength,
    MinValue,
    NotNull,
    OneOf,
    Pattern,
)
from repro.constraints.dc import DenialConstraint, Pred, find_violations
from repro.constraints.fd import (
    FDConstraint,
    FDLookup,
    FunctionalDependency,
    discover_fds,
)
from repro.constraints.registry import FAMILIES, UCRegistry
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import ConstraintSpecError


class TestBuiltins:
    def test_not_null(self):
        assert NotNull().check("x")
        assert not NotNull().check(None)
        assert not NotNull().check("NULL")

    def test_lengths_pass_on_null(self):
        assert MinLength(3).check(None)
        assert MaxLength(3).check(None)

    def test_min_max_length(self):
        assert MinLength(3).check("abc")
        assert not MinLength(4).check("abc")
        assert MaxLength(3).check("abc")
        assert not MaxLength(2).check("abc")

    def test_negative_length_rejected(self):
        with pytest.raises(ConstraintSpecError):
            MinLength(-1)

    def test_min_max_value(self):
        assert MinValue(0).check("5")
        assert not MinValue(10).check("5")
        assert MaxValue(10).check(5)
        assert not MaxValue(4).check(5)

    def test_value_constraints_fail_on_unparseable(self):
        assert not MinValue(0).check("abc")
        assert not MaxValue(0).check("abc")

    def test_pattern_full_match(self):
        zip5 = Pattern(r"[1-9][0-9]{4}")
        assert zip5.check("35150")
        assert not zip5.check("3515")
        assert not zip5.check("35150x")
        assert not zip5.check("03515")

    def test_invalid_regex_rejected(self):
        with pytest.raises(ConstraintSpecError):
            Pattern(r"[unclosed")

    def test_clock_pattern(self):
        assert CLOCK_12H.check("7:10 a.m.")
        assert CLOCK_12H.check("12:59 p.m.")
        assert not CLOCK_12H.check("13:00 p.m.")
        assert not CLOCK_12H.check("7:10")

    def test_one_of(self):
        c = OneOf({"CA", "NY"})
        assert c.check("CA")
        assert not c.check("KT")
        with pytest.raises(ConstraintSpecError):
            OneOf(set())

    def test_uc_binary_convention(self):
        assert NotNull()("x") == 1
        assert NotNull()(None) == 0


class TestCombinators:
    def test_predicate(self):
        even = Predicate(lambda v: int(v) % 2 == 0, "even")
        assert even.check("4")
        assert not even.check("3")
        assert "even" in even.describe()

    def test_negation(self):
        not_ca = Negation(OneOf({"CA"}))
        assert not_ca.check("NY")
        assert not not_ca.check("CA")
        assert not_ca.family == OneOf({"CA"}).family

    def test_conjunction_disjunction(self):
        c = Conjunction(MinLength(2), MaxLength(4))
        assert c.check("abc")
        assert not c.check("a")
        d = Disjunction(OneOf({"x"}), OneOf({"y"}))
        assert d.check("x")
        assert d.check("y")
        assert not d.check("z")


class TestFunctionalDependency:
    def test_validation(self):
        with pytest.raises(ConstraintSpecError):
            FunctionalDependency((), "y")
        with pytest.raises(ConstraintSpecError):
            FunctionalDependency(("x",), "x")

    def test_lookup_consensus(self, fd_table):
        fd = FunctionalDependency(("key",), "value")
        lookup = FDLookup(fd, fd_table)
        row = fd_table.row(0).as_dict()
        assert lookup.expected(row) == row["value"]
        assert not lookup.violates(row)
        assert lookup.agreement(row) == 1.0

    def test_lookup_detects_violation(self, fd_table):
        fd = FunctionalDependency(("key",), "value")
        lookup = FDLookup(fd, fd_table)
        row = dict(fd_table.row(0).as_dict(), value="WRONG")
        assert lookup.violates(row)

    def test_fd_constraint_tuple_check(self, fd_table):
        fd = FunctionalDependency(("key",), "value")
        constraint = FDConstraint(fd, fd_table)
        assert constraint.check_tuple(fd_table.row(0).as_dict())

    def test_discover_finds_planted_fd(self, fd_table):
        found = discover_fds(fd_table, min_confidence=0.95)
        fds = {str(d.fd) for d in found}
        assert "key -> value" in fds

    def test_discover_skips_noise_rhs(self, fd_table):
        found = discover_fds(fd_table, min_confidence=0.95)
        assert all(d.fd.rhs != "noise" for d in found)

    def test_discover_composite_lhs(self, fd_table):
        found = discover_fds(fd_table, min_confidence=0.95, max_lhs_size=2)
        assert any(len(d.fd.lhs) == 2 for d in found) or found


class TestDenialConstraints:
    def test_fd_encoding_detects_violation(self, fd_table):
        dirty = fd_table.copy()
        dirty.set_cell(0, "value", "WRONG")
        dc = DenialConstraint.from_fd("key", "value")
        violations = find_violations(dirty, dc)
        assert any(0 in hit for hit in violations)

    def test_clean_table_no_violations(self, fd_table):
        dc = DenialConstraint.from_fd("key", "value")
        assert find_violations(fd_table, dc) == []

    def test_single_tuple_dc(self, fd_table):
        dc = DenialConstraint(
            (Pred(Pred.t1("noise"), "=", Pred.const("x")),),
            name="no-x",
        )
        violations = find_violations(fd_table, dc)
        expected = sum(1 for v in fd_table.column("noise") if v == "x")
        assert len(violations) == expected

    def test_limit(self, fd_table):
        dc = DenialConstraint(
            (Pred(Pred.t1("noise"), "=", Pred.const("x")),)
        )
        assert len(find_violations(fd_table, dc, limit=2)) <= 2

    def test_unknown_operator_rejected(self):
        with pytest.raises(ConstraintSpecError):
            Pred(Pred.t1("a"), "~", Pred.t2("a"))

    def test_empty_dc_rejected(self):
        with pytest.raises(ConstraintSpecError):
            DenialConstraint(())

    def test_null_never_satisfies_predicates(self, fd_table):
        dirty = fd_table.copy()
        dirty.set_cell(0, "key", None)
        dc = DenialConstraint.from_fd("key", "value")
        assert not any(0 in hit for hit in find_violations(dirty, dc))

    def test_describe(self):
        dc = DenialConstraint.from_fd("a", "b")
        text = dc.describe()
        assert "t1.a" in text and "t2.b" in text


class TestRegistry:
    def test_check_cell_all_constraints(self):
        reg = UCRegistry().add("zip", NotNull(), Pattern(r"[0-9]{5}"))
        assert reg.check_cell("zip", "35150")
        assert not reg.check_cell("zip", "3515")
        assert not reg.check_cell("zip", None)

    def test_unconstrained_attribute_passes(self):
        reg = UCRegistry()
        assert reg.check_cell("anything", None)
        assert reg.uc("anything", "x") == 1

    def test_violations_in_tuple(self):
        reg = UCRegistry().add("a", NotNull()).add("b", MinLength(3))
        assert reg.violations_in_tuple({"a": None, "b": "xy"}) == 2
        assert reg.violations_in_tuple({"a": "ok", "b": "xyz"}) == 0

    def test_n_constraints(self):
        reg = UCRegistry().add("a", NotNull(), MinLength(1))
        assert reg.n_constraints == 2

    def test_without_families(self):
        reg = (
            UCRegistry()
            .add("a", NotNull(), Pattern(r"\d+"), MaxLength(5))
        )
        no_pattern = reg.without_families(["pattern"])
        assert no_pattern.check_cell("a", "xx")          # pattern gone
        assert not no_pattern.check_cell("a", "x" * 9)    # max stays
        none_left = reg.without_families(FAMILIES)
        assert none_left.check_cell("a", "x" * 99)

    def test_without_families_copies(self):
        reg = UCRegistry().add("a", NotNull())
        ablated = reg.without_families(["null"])
        assert reg.n_constraints == 1
        assert ablated.n_constraints == 0

    def test_describe(self):
        reg = UCRegistry().add("a", NotNull())
        assert "not-null" in reg.describe()
        assert UCRegistry().describe() == "(no constraints)"

    @given(st.text(max_size=8))
    def test_uc_binary_output(self, value):
        reg = UCRegistry().add("a", MinLength(2))
        assert reg.uc("a", value) in (0, 1)
