"""Tests for the four baseline cleaning systems."""

import pytest

from repro.baselines.garf import GarfCleaner, garf_clean
from repro.baselines.holoclean import HoloCleanCleaner, _as_fd, holoclean_clean
from repro.baselines.pclean import PCleanCleaner, pclean_clean
from repro.baselines.pclean_model import PCleanAttribute, PCleanModel
from repro.baselines.raha_baran import (
    BaranCorrector,
    LabeledTuples,
    RahaBaranCleaner,
    RahaDetector,
)
from repro.constraints.dc import DenialConstraint, Pred
from repro.data.benchmark import load_benchmark
from repro.dataset.diff import cells_equal
from repro.errors import BaselineError


@pytest.fixture(scope="module")
def hospital_small():
    return load_benchmark("hospital", n_rows=300, seed=0)


class TestPCleanModel:
    def test_invalid_distribution(self):
        with pytest.raises(BaselineError):
            PCleanAttribute("a", dist="gaussian")

    def test_invalid_typo_prob(self):
        with pytest.raises(BaselineError):
            PCleanAttribute("a", typo_prob=1.5)

    def test_render_ppl(self):
        model = PCleanModel(
            "demo",
            [
                PCleanAttribute("x", "string", ()),
                PCleanAttribute("y", "categorical", ("x",)),
            ],
            classes=[("x", "y")],
        )
        text = model.render_ppl()
        assert "x ~ string_prior()" in text
        assert "given (x)" in text
        assert model.n_ppl_lines == len(text.splitlines())

    def test_unknown_attribute(self):
        model = PCleanModel("demo", [PCleanAttribute("x")])
        with pytest.raises(BaselineError):
            model.attribute("nope")


class TestPClean:
    def test_clean_before_fit(self):
        model = PCleanModel("demo", [PCleanAttribute("Name")])
        with pytest.raises(BaselineError):
            PCleanCleaner(model).clean()

    def test_model_table_mismatch(self, customer_table):
        model = PCleanModel("demo", [PCleanAttribute("nope")])
        with pytest.raises(BaselineError):
            PCleanCleaner(model).fit(customer_table)

    def test_repairs_typo_with_parent_model(self, dirty_customer_table):
        model = PCleanModel(
            "customer",
            [
                PCleanAttribute("Name", "categorical"),
                PCleanAttribute("City", "string", ("ZipCode",), 0.1, 0.05),
                PCleanAttribute("State", "categorical", ("ZipCode",), 0.1, 0.05),
                PCleanAttribute("ZipCode", "number", (), 0.05, 0.05),
            ],
        )
        cleaned = pclean_clean(dirty_customer_table, model)
        assert cleaned.cell(3, "City") == "centre"   # typo fixed
        # Inconsistency errors (valid-but-wrong values) are PClean's weak
        # spot (Table 6): the categorical channel gives the observed valid
        # value most of the mass, so 'KT' may legitimately survive here.
        assert cleaned.cell(1, "State") in ("CA", "KT")

    def test_quality_tracks_program_quality(self, hospital_small):
        good = hospital_small.pclean_program()
        crude = PCleanModel(
            "hospital",
            [PCleanAttribute(a, "categorical", (), 0.3, 0.1) for a in good.names],
        )
        from repro.evaluation.metrics import evaluate_repairs

        good_out = PCleanCleaner(good).fit(hospital_small.dirty).clean()
        crude_out = PCleanCleaner(crude).fit(hospital_small.dirty).clean()
        q_good = evaluate_repairs(
            hospital_small.dirty, good_out, hospital_small.clean,
            hospital_small.error_cells,
        )
        q_crude = evaluate_repairs(
            hospital_small.dirty, crude_out, hospital_small.clean,
            hospital_small.error_cells,
        )
        assert q_good.f1 > q_crude.f1


class TestHoloClean:
    def test_needs_constraints(self):
        with pytest.raises(BaselineError):
            HoloCleanCleaner([])

    def test_as_fd_recognises_encoding(self):
        dc = DenialConstraint.from_fd("a", "b")
        assert _as_fd(dc) == ("a", "b")
        single = DenialConstraint((Pred(Pred.t1("a"), "=", Pred.const("x")),))
        assert _as_fd(single) is None

    def test_clean_before_fit(self, hospital_small):
        cleaner = HoloCleanCleaner(hospital_small.denial_constraints())
        with pytest.raises(BaselineError):
            cleaner.clean()

    def test_only_detected_cells_repaired(self, hospital_small):
        cleaner = HoloCleanCleaner(hospital_small.denial_constraints(), seed=0)
        cleaner.fit(hospital_small.dirty)
        cleaned = cleaner.clean()
        for j, attr in enumerate(hospital_small.dirty.schema.names):
            for i in range(hospital_small.dirty.n_rows):
                if not cells_equal(
                    cleaned.cell(i, attr), hospital_small.dirty.cell(i, attr)
                ):
                    assert (i, attr) in cleaner.noisy_cells

    def test_learned_weights_finite(self, hospital_small):
        import numpy as np

        cleaner = HoloCleanCleaner(hospital_small.denial_constraints(), seed=0)
        cleaner.fit(hospital_small.dirty)
        assert np.all(np.isfinite(cleaner.weights))

    def test_repairs_fd_violations(self, hospital_small):
        from repro.evaluation.metrics import evaluate_repairs

        cleaned = holoclean_clean(
            hospital_small.dirty, hospital_small.denial_constraints()
        )
        q = evaluate_repairs(
            hospital_small.dirty, cleaned, hospital_small.clean,
            hospital_small.error_cells,
        )
        # HoloClean's signature: meaningful precision, partial recall.
        assert q.precision > 0.3
        assert 0.0 < q.recall < 1.0


class TestRahaBaran:
    def test_alignment_checked(self, hospital_small):
        cleaner = RahaBaranCleaner()
        with pytest.raises(BaselineError):
            cleaner.fit(hospital_small.dirty, hospital_small.clean.head(3))

    def test_labeled_tuples_sampling(self, hospital_small):
        labeled = LabeledTuples.sample(
            hospital_small.dirty, hospital_small.clean, seed=1
        )
        assert len(labeled.detection_rows) == 20
        assert len(labeled.correction_rows) == 20
        assert not set(labeled.detection_rows) & set(labeled.correction_rows)

    def test_detector_flags_errors(self, hospital_small):
        labeled = LabeledTuples.sample(
            hospital_small.dirty, hospital_small.clean, seed=1
        )
        detector = RahaDetector(hospital_small.dirty, labeled)
        flagged = detector.detect()
        hits = len(flagged & hospital_small.error_cells)
        assert hits > 0

    def test_corrector_weights_positive(self, hospital_small):
        labeled = LabeledTuples.sample(
            hospital_small.dirty, hospital_small.clean, seed=1
        )
        corrector = BaranCorrector(hospital_small.dirty, labeled)
        assert all(w > 0 for w in corrector.weights.values())

    def test_end_to_end_improves_data(self, hospital_small):
        from repro.evaluation.metrics import evaluate_repairs

        cleaner = RahaBaranCleaner(seed=0)
        cleaner.fit(hospital_small.dirty, hospital_small.clean)
        cleaned = cleaner.clean()
        q = evaluate_repairs(
            hospital_small.dirty, cleaned, hospital_small.clean,
            hospital_small.error_cells,
        )
        assert q.f1 > 0.1


class TestGarf:
    def test_validation(self):
        with pytest.raises(BaselineError):
            GarfCleaner(min_support=0)
        with pytest.raises(BaselineError):
            GarfCleaner(min_confidence=0.0)

    def test_mines_planted_rule(self, fd_table):
        cleaner = GarfCleaner(min_support=3, min_confidence=0.9)
        rules = cleaner.mine_rules(fd_table)
        assert any(
            r.lhs_attr == "key" and r.rhs_attr == "value" for r in rules
        )

    def test_repairs_rule_violation(self, fd_table):
        dirty = fd_table.copy()
        truth = dirty.cell(0, "value")
        dirty.set_cell(0, "value", "WRONG")
        cleaned = garf_clean(dirty)
        assert cleaned.cell(0, "value") == truth

    def test_no_rules_no_changes(self):
        import random

        from repro.dataset.schema import Schema
        from repro.dataset.table import Table

        rng = random.Random(1)
        # fully random table: no confident rules should fire
        t = Table.from_rows(
            Schema.of("a", "b"),
            [[f"a{rng.randrange(100)}", f"b{rng.randrange(100)}"] for _ in range(100)],
        )
        cleaned = GarfCleaner().clean(t)
        assert cleaned == t

    def test_high_precision_low_recall_signature(self, hospital_small):
        from repro.evaluation.metrics import evaluate_repairs

        cleaned = garf_clean(hospital_small.dirty)
        q = evaluate_repairs(
            hospital_small.dirty, cleaned, hospital_small.clean,
            hospital_small.error_cells,
        )
        assert q.precision > 0.5
        assert q.recall < 0.9
