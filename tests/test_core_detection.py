"""Tests for repro.core.detection (the detect-only API).

Every signal is exercised in isolation (UC violations, weak support,
format rarity, missingness) and in combination via ``min_votes``; the
benchmark-level check measures detection P/R against injected errors.
"""

import random

import pytest

from repro.constraints.builtin import NotNull, Pattern
from repro.constraints.registry import UCRegistry
from repro.core.detection import (
    ErrorDetector,
    Suspicion,
    detect_errors,
)
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import CleaningError
from repro.evaluation.metrics import detection_quality


def fd_table(n_rows=150, seed=0):
    rng = random.Random(seed)
    schema = Schema.of("code:categorical", "name:categorical")
    mapping = {f"{i:04d}": f"n{i}" for i in range(6)}
    rows = [
        [c, mapping[c]]
        for c in (rng.choice(list(mapping)) for _ in range(n_rows))
    ]
    return Table.from_rows(schema, rows)


class TestSignals:
    def test_uc_violation_flagged(self):
        table = fd_table()
        table.set_cell(0, "code", "12x4")
        registry = UCRegistry().add("code", Pattern(r"[0-9]{4}"))
        result = detect_errors(table, registry)
        flagged = {s for s in result if s.row == 0 and s.attribute == "code"}
        assert flagged
        assert "uc" in next(iter(flagged)).signals

    def test_weak_support_flagged(self):
        table = fd_table()
        # a value that never co-occurs with its context elsewhere
        table.set_cell(0, "name", "GHOST")
        result = detect_errors(table)
        assert (0, "name") in result.cells
        suspicion = [s for s in result if (s.row, s.attribute) == (0, "name")][0]
        assert "support" in suspicion.signals

    def test_pattern_rarity_flagged(self):
        table = fd_table()
        table.set_cell(0, "code", "!!@@")  # mask unlike every other code
        result = detect_errors(table)
        suspicion = [s for s in result if (s.row, s.attribute) == (0, "code")][0]
        assert "pattern" in suspicion.signals

    def test_missing_is_its_own_signal(self):
        table = fd_table()
        table.set_cell(3, "name", None)
        result = detect_errors(table)
        suspicion = [s for s in result if (s.row, s.attribute) == (3, "name")][0]
        assert suspicion.signals == ("missing",)

    def test_clean_cells_not_flagged(self):
        table = fd_table()
        result = detect_errors(table)
        # an FD-consistent table of frequent values: nothing to flag
        assert len(result) == 0

    def test_votes_by_signal_accumulates(self):
        table = fd_table()
        table.set_cell(0, "name", None)
        table.set_cell(1, "name", "GHOST")
        result = detect_errors(table)
        assert result.votes_by_signal["missing"] == 1
        assert result.votes_by_signal["support"] >= 1
        assert result.cells_total == table.n_rows * table.n_cols


class TestMinVotes:
    def test_min_votes_two_requires_agreement(self):
        table = fd_table()
        table.set_cell(0, "code", "zz!!")  # rare mask AND weak support
        registry = UCRegistry().add("code", Pattern(r"[0-9]{4}"))
        strict = ErrorDetector(registry, min_votes=2).fit(table).detect()
        assert (0, "code") in strict.cells

    def test_min_votes_filters_single_signal_cells(self):
        table = fd_table(seed=2)
        # weak support only: same mask as everything else, passes UCs
        table.set_cell(0, "code", "9999")
        registry = UCRegistry().add("code", Pattern(r"[0-9]{4}"))
        loose = ErrorDetector(registry, min_votes=1).fit(table).detect()
        strict = ErrorDetector(registry, min_votes=2).fit(table).detect()
        assert (0, "code") in loose.cells
        assert (0, "code") not in strict.cells


class TestValidation:
    def test_detect_before_fit_rejected(self):
        with pytest.raises(CleaningError, match="fit"):
            ErrorDetector().detect()

    def test_bad_tau_rejected(self):
        with pytest.raises(CleaningError, match="tau_clean"):
            ErrorDetector(tau_clean=1.5)

    def test_bad_rarity_rejected(self):
        with pytest.raises(CleaningError, match="rarity"):
            ErrorDetector(rarity_threshold=-0.1)

    def test_bad_min_votes_rejected(self):
        with pytest.raises(CleaningError, match="min_votes"):
            ErrorDetector(min_votes=0)


class TestResultAPI:
    def test_for_attribute_filters(self):
        table = fd_table()
        table.set_cell(0, "code", "!!!!")
        table.set_cell(1, "name", None)
        result = detect_errors(table)
        assert all(s.attribute == "code" for s in result.for_attribute("code"))
        assert result.for_attribute("name")

    def test_suspicion_str_mentions_signals(self):
        s = Suspicion(3, "code", "!!!!", ("uc", "pattern"))
        assert "uc" in str(s) and "pattern" in str(s)
        assert s.n_votes == 2

    def test_detect_on_fresh_table(self):
        """fit() on one sample, detect() on another of the same schema."""
        train = fd_table(seed=3)
        fresh = fd_table(n_rows=20, seed=4)
        fresh.set_cell(0, "name", "GHOST")
        detector = ErrorDetector().fit(train)
        result = detector.detect(fresh)
        assert (0, "name") in result.cells


class TestBenchmarkDetection:
    def test_detection_quality_on_hospital(self):
        """On the Hospital benchmark the ensemble must reach a usable
        detection F1 — the signals BClean prunes with are informative."""
        from repro.data.benchmark import load_benchmark

        instance = load_benchmark("hospital", n_rows=400, seed=0)
        result = detect_errors(instance.dirty, instance.constraints)
        quality = detection_quality(
            instance.dirty, result.cells, instance.clean
        )
        assert quality.recall > 0.7
        assert quality.precision > 0.4
        assert quality.f1 > 0.5

    def test_two_vote_mode_is_high_precision(self):
        """Requiring signal agreement trades recall for precision — the
        review-queue configuration."""
        from repro.data.benchmark import load_benchmark

        instance = load_benchmark("hospital", n_rows=400, seed=0)
        result = (
            ErrorDetector(instance.constraints, min_votes=2)
            .fit(instance.dirty)
            .detect()
        )
        quality = detection_quality(
            instance.dirty, result.cells, instance.clean
        )
        assert quality.precision > 0.9
