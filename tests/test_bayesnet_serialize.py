"""Tests for repro.bayesnet.serialize (JSON round-trips).

The load-bearing property: a reloaded network must score *identically*
— same log-probabilities, same posteriors, same MAP decisions — because
the §7.3.2 workflow reuses saved (possibly hand-edited) networks across
cleaning runs.
"""

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet.cpt import CPT, NULL_KEY
from repro.bayesnet.dag import DAG
from repro.bayesnet.model import DiscreteBayesNet
from repro.bayesnet.serialize import (
    bn_from_dict,
    bn_to_dict,
    cpt_from_dict,
    cpt_to_dict,
    dag_from_dict,
    dag_to_dict,
    load_bn,
    load_dag,
    save_bn,
    save_dag,
)
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import CycleError, GraphError


def fitted_bn(seed=0, n_rows=80) -> DiscreteBayesNet:
    rng = random.Random(seed)
    schema = Schema.of("a:categorical", "b:categorical", "c:categorical")
    rows = []
    for _ in range(n_rows):
        a = rng.choice(["x", "y"])
        b = a.upper() if rng.random() < 0.9 else "Z"
        c = rng.choice(["p", None])  # NULLs must survive the round trip
        rows.append([a, b, c])
    table = Table.from_rows(schema, rows)
    dag = DAG(schema.names)
    dag.add_edge("a", "b")
    dag.add_edge("b", "c")
    return DiscreteBayesNet.fit(table, dag, alpha=0.5)


class TestDAGRoundTrip:
    def test_structure_preserved(self):
        dag = DAG(["a", "b", "c"])
        dag.add_edge("a", "b", weight=0.7)
        dag.add_edge("a", "c", weight=0.2)
        rebuilt = dag_from_dict(dag_to_dict(dag))
        assert rebuilt == dag
        assert rebuilt.edge_weight("a", "b") == pytest.approx(0.7)

    def test_file_round_trip(self, tmp_path):
        dag = DAG(["x", "y"])
        dag.add_edge("x", "y")
        path = tmp_path / "net.json"
        save_dag(dag, path)
        assert load_dag(path) == dag

    def test_saved_json_is_diffable(self, tmp_path):
        dag = DAG(["x", "y"])
        dag.add_edge("x", "y")
        path = tmp_path / "net.json"
        save_dag(dag, path)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["edges"][0]["from"] == "x"

    def test_malformed_payload_rejected(self):
        with pytest.raises(GraphError, match="malformed"):
            dag_from_dict({"nodes": ["a"]})

    def test_cyclic_payload_rejected(self):
        payload = {
            "version": 1,
            "nodes": ["a", "b"],
            "edges": [
                {"from": "a", "to": "b", "weight": 1.0},
                {"from": "b", "to": "a", "weight": 1.0},
            ],
        }
        with pytest.raises(CycleError):
            dag_from_dict(payload)

    def test_isolated_nodes_survive(self):
        dag = DAG(["a", "b", "lonely"])
        dag.add_edge("a", "b")
        rebuilt = dag_from_dict(dag_to_dict(dag))
        assert "lonely" in rebuilt
        assert rebuilt.is_isolated("lonely")


class TestCPTRoundTrip:
    def test_probabilities_identical(self):
        cpt = CPT("b", ("a",), alpha=0.5)
        for _ in range(10):
            cpt.observe("X", ("x",))
        for _ in range(3):
            cpt.observe("Z", ("x",))
        cpt.observe("X", ("y",))
        rebuilt = cpt_from_dict(cpt_to_dict(cpt))
        for value in ("X", "Z", "missing"):
            for parent in (("x",), ("y",), ("unseen",)):
                assert rebuilt.prob(value, parent) == pytest.approx(
                    cpt.prob(value, parent)
                )

    def test_null_values_survive(self):
        cpt = CPT("c", (), alpha=1.0)
        cpt.observe(None)
        cpt.observe("p")
        rebuilt = cpt_from_dict(cpt_to_dict(cpt))
        assert rebuilt.prob(None) == pytest.approx(cpt.prob(None))
        assert NULL_KEY in rebuilt.domain

    def test_integer_domain_survives(self):
        """JSON keys are strings; tagged values must restore ints."""
        cpt = CPT("n", (), alpha=1.0)
        cpt.observe(5)
        cpt.observe(7)
        cpt.observe(5)
        rebuilt = cpt_from_dict(cpt_to_dict(cpt))
        assert rebuilt.prob(5) == pytest.approx(cpt.prob(5))
        assert 5 in rebuilt.domain  # int, not "5"
        assert "5" not in rebuilt.domain

    def test_counts_metadata_preserved(self):
        cpt = CPT("b", ("a",))
        cpt.observe("v", ("p",))
        cpt.observe("w", ("p",))
        rebuilt = cpt_from_dict(cpt_to_dict(cpt))
        assert rebuilt.n_observations == 2
        assert rebuilt.n_configs == 1
        assert rebuilt.seen_config(("p",))


class TestModelRoundTrip:
    def test_scores_identical(self, tmp_path):
        bn = fitted_bn()
        path = tmp_path / "model.json"
        save_bn(bn, path)
        rebuilt = load_bn(path)

        row = {"a": "x", "b": "X", "c": "p"}
        assert rebuilt.joint_log_prob(row) == pytest.approx(
            bn.joint_log_prob(row)
        )
        assert rebuilt.blanket_log_score("b", "Z", row) == pytest.approx(
            bn.blanket_log_score("b", "Z", row)
        )

    def test_posteriors_identical(self, tmp_path):
        bn = fitted_bn(seed=1)
        path = tmp_path / "model.json"
        save_bn(bn, path)
        rebuilt = load_bn(path)
        row = {"a": "y", "c": None}
        p_orig = bn.posterior("b", row)
        p_new = rebuilt.posterior("b", row)
        assert set(p_orig) == set(p_new)
        for value in p_orig:
            assert p_new[value] == pytest.approx(p_orig[value])

    @given(seed=st.integers(0, 2000))
    @settings(max_examples=10, deadline=None)
    def test_round_trip_property(self, seed):
        bn = fitted_bn(seed=seed, n_rows=40)
        rebuilt = bn_from_dict(bn_to_dict(bn))
        rng = random.Random(seed)
        row = {
            "a": rng.choice(["x", "y"]),
            "b": rng.choice(["X", "Y", "Z"]),
            "c": rng.choice(["p", None]),
        }
        assert rebuilt.joint_log_prob(row) == pytest.approx(
            bn.joint_log_prob(row)
        )

    def test_edited_network_reuse_workflow(self, tmp_path):
        """The §7.3.2 loop: fit, edit, save; reload and clean with it."""
        from repro.core.config import BCleanConfig
        from repro.core.engine import BClean

        rng = random.Random(7)
        schema = Schema.of("k:categorical", "v:categorical")
        mapping = {f"k{i}": f"v{i}" for i in range(4)}
        rows = [
            [k, mapping[k]]
            for k in (rng.choice(list(mapping)) for _ in range(100))
        ]
        table = Table.from_rows(schema, rows)
        table.set_cell(0, "v", "WRONG")

        engine = BClean(BCleanConfig.pi())
        engine.fit(table)
        edited = engine.dag.copy()
        if not edited.has_edge("k", "v") and not edited.has_edge("v", "k"):
            edited.add_edge("k", "v")
        path = tmp_path / "edited.json"
        save_dag(edited, path)

        # a later session: reload the network instead of re-learning
        engine2 = BClean(BCleanConfig.pi())
        engine2.fit(table, dag=load_dag(path))
        result = engine2.clean()
        assert result.cleaned.cell(0, "v") == mapping[table.cell(0, "k")]


class TestEncodingRider:
    """The registry's reload contract at the serialize layer: the
    build-time encoding rides with the network, and codes minted for a
    foreign table's unseen values keep their exact numbers through the
    round trip — so a reloaded model repairs byte-identically."""

    def _sig(self, result):
        return [
            (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
            for r in result.repairs
        ]

    def test_minted_codes_round_trip_byte_identical(self, tmp_path):
        from repro.core.config import BCleanConfig
        from repro.core.engine import BClean
        from repro.bayesnet.serialize import load_bn_bundle
        from repro.data.benchmark import load_benchmark
        from repro.serve.registry import table_from_encoding

        ds = load_benchmark("hospital", n_rows=30, seed=0)
        engine = BClean(BCleanConfig.pip(), ds.constraints)
        engine.fit(ds.dirty)
        foreign = ds.dirty.copy()
        minted_attr = foreign.schema.names[1]
        foreign.set_cell(2, minted_attr, "UNSEEN-MINTED-VALUE")
        foreign.set_cell(7, foreign.schema.names[2], None)
        before = engine.clean(foreign)  # mints codes for unseen values

        path = tmp_path / "model.json"
        save_bn(engine.bn, path, encoding=engine._encoding)
        bn, encoding = load_bn_bundle(path)

        # every code — minted ones included — keeps number and value
        assert encoding is not None
        for attr in engine._encoding.names:
            assert (
                encoding.vocab(attr)._values
                == engine._encoding.vocab(attr)._values
            )
            assert (
                encoding.codes(attr) == engine._encoding.codes(attr)
            ).all()
        assert "UNSEEN-MINTED-VALUE" in encoding.vocab(minted_attr)._values

        # a model rebuilt from the bundle repairs byte-identically
        table = table_from_encoding(encoding, ds.dirty.schema)
        assert table == ds.dirty
        encoding._source = table
        encoding._source_mutations = table.mutation_count
        reloaded = BClean(BCleanConfig.pip(), ds.constraints)
        reloaded.fit(table, dag=bn.dag, encoding=encoding)
        reloaded.bn = bn
        reloaded._columnar = None
        after = reloaded.clean(foreign)
        assert self._sig(after) == self._sig(before)
        assert after.cleaned == before.cleaned

    def test_bundle_without_encoding_loads_none(self, tmp_path):
        from repro.bayesnet.serialize import load_bn_bundle

        bn = fitted_bn()
        path = tmp_path / "bare.json"
        save_bn(bn, path)  # pre-registry format: no rider
        loaded, encoding = load_bn_bundle(path)
        assert encoding is None
        assert loaded.dag.nodes == bn.dag.nodes
        # and plain load_bn still reads files that carry a rider
        schema = Schema.of("a:categorical", "b:categorical", "c:categorical")
        rows = [["x", "X", "p"], ["y", "Y", None]]
        table = Table.from_rows(schema, rows)
        with_rider = tmp_path / "rider.json"
        save_bn(bn, with_rider, encoding=table.encode())
        assert load_bn(with_rider).dag.nodes == bn.dag.nodes

    def test_malformed_encoding_payload_rejected(self):
        from repro.bayesnet.serialize import encoding_from_dict

        with pytest.raises(GraphError, match="malformed encoding"):
            encoding_from_dict({"names": ["a"]})
