"""Property-based tests on engine-level invariants.

These go beyond unit checks: for randomly generated FD tables and error
patterns, the cleaning engine must preserve structural invariants
(shape, no-new-NULLs, repair provenance) regardless of the data drawn.
"""

import random
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bayesnet.structure.scores import make_score
from repro.constraints.builtin import NotNull
from repro.constraints.registry import UCRegistry
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.errors import ErrorInjector
from repro.dataset.diff import cells_equal
from repro.dataset.schema import Schema
from repro.dataset.table import Table, cell_key, is_null
from repro.stats.infotheory import joint_code_counts


def build_fd_table(n_keys: int, n_rows: int, seed: int) -> Table:
    rng = random.Random(seed)
    schema = Schema.of("key:categorical", "value:categorical", "extra:categorical")
    mapping = {f"k{i}": f"v{i}" for i in range(n_keys)}
    extras = ["p", "q", "r"]
    rows = []
    for _ in range(n_rows):
        k = rng.choice(list(mapping))
        rows.append([k, mapping[k], rng.choice(extras)])
    return Table.from_rows(schema, rows)


engine_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(0, 10_000),
    n_keys=st.integers(3, 8),
    rate=st.floats(0.05, 0.25),
)
@engine_settings
def test_engine_structural_invariants(seed, n_keys, rate):
    clean = build_fd_table(n_keys, 120, seed)
    injection = ErrorInjector(rate=rate, seed=seed + 1).inject(clean)
    registry = UCRegistry()
    for attr in clean.schema.names:
        registry.add(attr, NotNull())

    engine = BClean(BCleanConfig.pi(), registry)
    engine.fit(injection.dirty)
    result = engine.clean()

    # shape preserved
    assert result.cleaned.n_rows == clean.n_rows
    assert result.cleaned.schema == clean.schema

    # the engine never writes NULL as a repair
    for r in result.repairs:
        assert not is_null(r.new_value)

    # every repair record matches the output table
    for r in result.repairs:
        assert cells_equal(result.cleaned.cell(r.row, r.attribute), r.new_value)
        assert not cells_equal(r.new_value, injection.dirty.cell(r.row, r.attribute))

    # cells outside the repair set are byte-identical to the input
    repaired = result.repaired_cells()
    for j, attr in enumerate(clean.schema.names):
        for i in range(clean.n_rows):
            if (i, attr) not in repaired:
                assert cells_equal(
                    result.cleaned.cell(i, attr), injection.dirty.cell(i, attr)
                )


@given(seed=st.integers(0, 10_000))
@engine_settings
def test_cleaning_never_increases_errors_on_fd_columns(seed):
    """On the FD-structured columns (key -> value), cleaning must not
    increase the number of dirty cells (net improvement property).

    The third column, ``extra``, is uniform random noise with no
    dependency structure; like the real BClean (whose precision is below
    1.0 in the paper), the engine may rewrite such cells, so the
    net-improvement property is only claimed for columns that actually
    carry relational signal.
    """
    clean = build_fd_table(5, 150, seed)
    injection = ErrorInjector(rate=0.1, seed=seed + 1, types=("T", "M")).inject(
        clean
    )
    registry = UCRegistry()
    for attr in clean.schema.names:
        registry.add(attr, NotNull())

    engine = BClean(BCleanConfig.pi(), registry)
    engine.fit(injection.dirty)
    result = engine.clean()

    def dirty_cells(table, attrs):
        return sum(
            0 if cells_equal(table.cell(i, a), clean.cell(i, a)) else 1
            for a in attrs
            for i in range(clean.n_rows)
        )

    fd_attrs = ("key", "value")
    before = dirty_cells(injection.dirty, fd_attrs)
    after = dirty_cells(result.cleaned, fd_attrs)
    assert after <= before


@given(seed=st.integers(0, 10_000))
@engine_settings
def test_cleaning_is_deterministic(seed):
    clean = build_fd_table(4, 100, seed)
    injection = ErrorInjector(rate=0.15, seed=seed + 1).inject(clean)

    def run():
        engine = BClean(BCleanConfig.pi())
        engine.fit(injection.dirty)
        return engine.clean().cleaned

    assert run() == run()


# -- columnar fit invariants ------------------------------------------------------


def build_random_table(seed: int, n_rows: int = 40) -> Table:
    """A small random table with NULLs and null-like strings mixed in."""
    rng = random.Random(seed)
    schema = Schema.of("a:categorical", "b:categorical", "c:categorical")
    alphabet = ["x", "y", "z", "w", None, "null"]
    rows = [
        [rng.choice(alphabet) for _ in range(3)] for _ in range(n_rows)
    ]
    return Table.from_rows(schema, rows)


@given(seed=st.integers(0, 10_000))
@engine_settings
def test_coded_counts_match_bruteforce_dicts(seed):
    """Marginal and joint counts from TableEncoding codes must equal
    brute-force dict counts over cell keys — including the
    first-appearance ordering the CPT/score assembly relies on."""
    table = build_random_table(seed)
    enc = table.encode()
    names = table.schema.names
    columns = {n: [cell_key(v) for v in table.column(n)] for n in names}

    for attr in names:
        (codes,), counts, first = joint_code_counts([enc.codes(attr)])
        brute = Counter(columns[attr])
        decoded = [cell_key(enc.decode(attr, int(c))) for c in codes]
        assert dict(zip(decoded, counts.tolist())) == dict(brute)
        # first-appearance order == Counter insertion order
        assert decoded == list(brute)
        assert first.tolist() == sorted(first.tolist())

    for a, b in [(names[0], names[1]), (names[1], names[2])]:
        uniq, counts, _ = joint_code_counts([enc.codes(a), enc.codes(b)])
        brute = Counter(zip(columns[a], columns[b]))
        decoded = [
            (cell_key(enc.decode(a, int(ca))), cell_key(enc.decode(b, int(cb))))
            for ca, cb in zip(*uniq)
        ]
        assert dict(zip(decoded, counts.tolist())) == dict(brute)
        assert decoded == list(brute)


@given(seed=st.integers(0, 10_000), perm_seed=st.integers(0, 10_000))
@engine_settings
def test_structure_scores_row_order_invariant(seed, perm_seed):
    """Family scores are functions of the counts, not the row order —
    and the coded path must agree with the scalar walk on every
    permutation."""
    table = build_random_table(seed)
    names = table.schema.names
    order = list(range(table.n_rows))
    random.Random(perm_seed).shuffle(order)
    shuffled = Table.from_rows(
        table.schema, [[table.columns[j][i] for j in range(3)] for i in order]
    )

    for t in (table, shuffled):
        scalar = make_score("bic", t)
        coded = make_score("bic", t, encoding=t.encode())
        for node, parents in [(names[0], ()), (names[2], (names[0], names[1]))]:
            assert scalar.family(node, parents) == coded.family(node, parents)

    base = make_score("bic", table, encoding=table.encode())
    perm = make_score("bic", shuffled, encoding=shuffled.encode())
    for node, parents in [(names[0], ()), (names[2], (names[0], names[1]))]:
        assert perm.family(node, parents) == pytest.approx(
            base.family(node, parents), rel=1e-9
        )


@given(seed=st.integers(0, 10_000), n_jobs=st.integers(1, 3))
@engine_settings
def test_fit_shard_boundaries_invariant(seed, n_jobs):
    """CPTs and cleaning results must not depend on how the fit work is
    sharded (worker count changes the shard plan)."""
    clean = build_fd_table(5, 80, seed)
    injection = ErrorInjector(rate=0.15, seed=seed + 1).inject(clean)

    def run(fit_executor, jobs):
        engine = BClean(
            BCleanConfig.pi(
                structure="hillclimb", fit_executor=fit_executor, n_jobs=jobs
            )
        )
        engine.fit(injection.dirty)
        return engine, engine.clean()

    base_engine, base = run("serial", None)
    engine, result = run("thread", n_jobs)
    for node in base_engine.bn.dag.nodes:
        a, b = base_engine.bn.cpts[node], engine.bn.cpts[node]
        assert list(a._config_counts.items()) == list(b._config_counts.items())
        assert list(a._marginal.items()) == list(b._marginal.items())
    assert base.cleaned == result.cleaned
