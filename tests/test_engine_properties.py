"""Property-based tests on engine-level invariants.

These go beyond unit checks: for randomly generated FD tables and error
patterns, the cleaning engine must preserve structural invariants
(shape, no-new-NULLs, repair provenance) regardless of the data drawn.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constraints.builtin import NotNull
from repro.constraints.registry import UCRegistry
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.errors import ErrorInjector
from repro.dataset.diff import cells_equal
from repro.dataset.schema import Schema
from repro.dataset.table import Table, is_null


def build_fd_table(n_keys: int, n_rows: int, seed: int) -> Table:
    rng = random.Random(seed)
    schema = Schema.of("key:categorical", "value:categorical", "extra:categorical")
    mapping = {f"k{i}": f"v{i}" for i in range(n_keys)}
    extras = ["p", "q", "r"]
    rows = []
    for _ in range(n_rows):
        k = rng.choice(list(mapping))
        rows.append([k, mapping[k], rng.choice(extras)])
    return Table.from_rows(schema, rows)


engine_settings = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    seed=st.integers(0, 10_000),
    n_keys=st.integers(3, 8),
    rate=st.floats(0.05, 0.25),
)
@engine_settings
def test_engine_structural_invariants(seed, n_keys, rate):
    clean = build_fd_table(n_keys, 120, seed)
    injection = ErrorInjector(rate=rate, seed=seed + 1).inject(clean)
    registry = UCRegistry()
    for attr in clean.schema.names:
        registry.add(attr, NotNull())

    engine = BClean(BCleanConfig.pi(), registry)
    engine.fit(injection.dirty)
    result = engine.clean()

    # shape preserved
    assert result.cleaned.n_rows == clean.n_rows
    assert result.cleaned.schema == clean.schema

    # the engine never writes NULL as a repair
    for r in result.repairs:
        assert not is_null(r.new_value)

    # every repair record matches the output table
    for r in result.repairs:
        assert cells_equal(result.cleaned.cell(r.row, r.attribute), r.new_value)
        assert not cells_equal(r.new_value, injection.dirty.cell(r.row, r.attribute))

    # cells outside the repair set are byte-identical to the input
    repaired = result.repaired_cells()
    for j, attr in enumerate(clean.schema.names):
        for i in range(clean.n_rows):
            if (i, attr) not in repaired:
                assert cells_equal(
                    result.cleaned.cell(i, attr), injection.dirty.cell(i, attr)
                )


@given(seed=st.integers(0, 10_000))
@engine_settings
def test_cleaning_never_increases_errors_on_fd_columns(seed):
    """On the FD-structured columns (key -> value), cleaning must not
    increase the number of dirty cells (net improvement property).

    The third column, ``extra``, is uniform random noise with no
    dependency structure; like the real BClean (whose precision is below
    1.0 in the paper), the engine may rewrite such cells, so the
    net-improvement property is only claimed for columns that actually
    carry relational signal.
    """
    clean = build_fd_table(5, 150, seed)
    injection = ErrorInjector(rate=0.1, seed=seed + 1, types=("T", "M")).inject(
        clean
    )
    registry = UCRegistry()
    for attr in clean.schema.names:
        registry.add(attr, NotNull())

    engine = BClean(BCleanConfig.pi(), registry)
    engine.fit(injection.dirty)
    result = engine.clean()

    def dirty_cells(table, attrs):
        return sum(
            0 if cells_equal(table.cell(i, a), clean.cell(i, a)) else 1
            for a in attrs
            for i in range(clean.n_rows)
        )

    fd_attrs = ("key", "value")
    before = dirty_cells(injection.dirty, fd_attrs)
    after = dirty_cells(result.cleaned, fd_attrs)
    assert after <= before


@given(seed=st.integers(0, 10_000))
@engine_settings
def test_cleaning_is_deterministic(seed):
    clean = build_fd_table(4, 100, seed)
    injection = ErrorInjector(rate=0.15, seed=seed + 1).inject(clean)

    def run():
        engine = BClean(BCleanConfig.pi())
        engine.fit(injection.dirty)
        return engine.clean().cleaned

    assert run() == run()
