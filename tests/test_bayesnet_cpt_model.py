"""Tests for repro.bayesnet.cpt and repro.bayesnet.model."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bayesnet.cpt import CPT, NULL_KEY, cell_key
from repro.bayesnet.dag import DAG
from repro.bayesnet.model import DiscreteBayesNet
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import CPTError, InferenceError


class TestCellKey:
    def test_null_forms_share_a_key(self):
        assert cell_key(None) == NULL_KEY
        assert cell_key(float("nan")) == NULL_KEY

    def test_regular_values_pass_through(self):
        assert cell_key("x") == "x"
        assert cell_key(3) == 3


class TestCPT:
    def test_invalid_alpha(self):
        with pytest.raises(CPTError):
            CPT("x", alpha=0.0)

    def test_marginal_estimation(self):
        cpt = CPT("x", alpha=1.0)
        cpt.fit(["a", "a", "b"])
        # (2+1)/(3+2) and (1+1)/(3+2)
        assert cpt.prob("a") == pytest.approx(0.6)
        assert cpt.prob("b") == pytest.approx(0.4)

    def test_conditional_estimation(self):
        cpt = CPT("y", ["x"], alpha=1.0)
        cpt.fit(["p", "p", "q"], [["a", "a", "b"]])
        assert cpt.prob("p", ("a",)) > cpt.prob("q", ("a",))
        assert cpt.prob("q", ("b",)) > cpt.prob("p", ("b",))

    def test_unseen_config_falls_back_to_marginal(self):
        cpt = CPT("y", ["x"], alpha=1.0)
        cpt.fit(["p", "p", "q"], [["a", "a", "b"]])
        assert cpt.prob("p", ("zzz",)) == pytest.approx(cpt.marginal_prob("p"))

    def test_null_is_a_regular_symbol(self):
        cpt = CPT("y", ["x"])
        cpt.fit([None, "p"], [["a", "a"]])
        assert cpt.prob(None, ("a",)) > 0.0
        assert NULL_KEY in cpt.domain

    def test_parent_arity_checked(self):
        cpt = CPT("y", ["x"])
        with pytest.raises(CPTError):
            cpt.observe("p", ())
        with pytest.raises(CPTError):
            cpt.fit(["p"], [])

    def test_parent_column_length_checked(self):
        cpt = CPT("y", ["x"])
        with pytest.raises(CPTError):
            cpt.fit(["p", "q"], [["a"]])

    def test_distribution_sums_below_one(self):
        cpt = CPT("x", alpha=1.0)
        cpt.fit(["a", "b", "c"])
        total = sum(cpt.distribution().values())
        assert total <= 1.0
        assert total > 0.5

    def test_map_value(self):
        cpt = CPT("y", ["x"])
        cpt.fit(["p", "p", "q"], [["a", "a", "b"]])
        assert cpt.map_value(("a",)) == "p"
        assert cpt.map_value(("unseen",)) == "p"  # marginal mode
        assert CPT("z").map_value() is None

    def test_log_prob_finite(self):
        cpt = CPT("x")
        cpt.fit(["a"])
        assert math.isfinite(cpt.log_prob("never-seen"))

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=50))
    def test_probabilities_in_unit_interval(self, values):
        cpt = CPT("x", alpha=0.5)
        cpt.fit(values)
        # prob can reach exactly 1.0 when the observed domain has a
        # single value (smoothing mass all on it).
        for v in ("a", "b", "c", "zz"):
            assert 0.0 < cpt.prob(v) <= 1.0


@pytest.fixture
def zip_bn(customer_table) -> DiscreteBayesNet:
    dag = DAG(customer_table.schema.names)
    dag.add_edge("ZipCode", "City")
    dag.add_edge("ZipCode", "State")
    return DiscreteBayesNet.fit(customer_table, dag, alpha=0.5)


class TestDiscreteBayesNet:
    def test_fit_requires_matching_nodes(self, customer_table):
        dag = DAG(["nope"])
        with pytest.raises(InferenceError):
            DiscreteBayesNet.fit(customer_table, dag)

    def test_missing_cpt_rejected(self, zip_bn):
        with pytest.raises(InferenceError):
            DiscreteBayesNet(zip_bn.dag, {})

    def test_joint_log_prob_prefers_consistent_row(self, zip_bn, customer_table):
        consistent = customer_table.row(0).as_dict()
        inconsistent = dict(consistent, State="KT")  # zip 35150 is CA
        assert zip_bn.joint_log_prob(consistent) > zip_bn.joint_log_prob(
            inconsistent
        )

    def test_blanket_score_matches_joint_difference(self, zip_bn, customer_table):
        # For any two candidate values, the blanket-score difference must
        # equal the joint-log-prob difference (terms not involving the
        # node cancel) — the §6.1 partition is exact under full evidence.
        row = customer_table.row(0).as_dict()
        j1 = zip_bn.joint_log_prob_with(row, "State", "CA")
        j2 = zip_bn.joint_log_prob_with(row, "State", "KT")
        b1 = zip_bn.blanket_log_score("State", "CA", row)
        b2 = zip_bn.blanket_log_score("State", "KT", row)
        assert (j1 - j2) == pytest.approx(b1 - b2, abs=1e-9)

    def test_blanket_score_with_children(self, zip_bn, customer_table):
        # ZipCode has two children; scoring it must include their CPTs.
        row = customer_table.row(0).as_dict()
        right = zip_bn.blanket_log_score("ZipCode", "35150", row)
        wrong = zip_bn.blanket_log_score("ZipCode", "35960", row)
        assert right > wrong

    def test_posterior_normalised(self, zip_bn, customer_table):
        row = customer_table.row(0).as_dict()
        posterior = zip_bn.posterior("State", row)
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert max(posterior, key=posterior.get) == "CA"

    def test_posterior_empty_candidates_rejected(self, zip_bn, customer_table):
        with pytest.raises(InferenceError):
            zip_bn.posterior("State", customer_table.row(0).as_dict(), [])

    def test_refit_nodes(self, zip_bn, customer_table):
        modified = customer_table.copy()
        for i in range(modified.n_rows):
            modified.set_cell(i, "State", "TX")
        zip_bn.refit_nodes(modified, ["State"])
        row = dict(modified.row(0).as_dict())
        posterior = zip_bn.posterior("State", row)
        assert max(posterior, key=posterior.get) == "TX"

    def test_refit_unknown_node(self, zip_bn, customer_table):
        with pytest.raises(InferenceError):
            zip_bn.refit_nodes(customer_table, ["nope"])
