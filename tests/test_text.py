"""Tests for the repro.text substrate, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.schema import AttrType
from repro.text.levenshtein import (
    damerau_levenshtein,
    levenshtein,
    levenshtein_within,
    normalized_edit_similarity,
)
from repro.text.patterns import PatternProfile, value_mask
from repro.text.similarity import (
    cell_similarity,
    numeric_similarity,
    strict_equality_similarity,
)
from repro.text.tokenize import NgramLanguageModel, char_ngrams, word_tokens

short_text = st.text(alphabet="abcdef 0123", max_size=12)


class TestLevenshtein:
    @pytest.mark.parametrize(
        "a,b,d",
        [
            ("", "", 0),
            ("a", "", 1),
            ("", "abc", 3),
            ("kitten", "sitting", 3),
            ("flaw", "lawn", 2),
            ("25676000", "25676x00", 1),
            ("315 w hickory st", "315 w hicky st", 2),
        ],
    )
    def test_known_distances(self, a, b, d):
        assert levenshtein(a, b) == d

    @given(short_text, short_text)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(short_text)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0

    @given(short_text, short_text)
    def test_length_bounds(self, a, b):
        d = levenshtein(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(short_text, short_text, short_text)
    @settings(max_examples=40)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)


class TestLevenshteinWithin:
    @given(short_text, short_text)
    def test_agrees_with_full_distance(self, a, b):
        full = levenshtein(a, b)
        bounded = levenshtein_within(a, b, 3)
        if full <= 3:
            assert bounded == full
        else:
            assert bounded is None

    def test_negative_bound(self):
        assert levenshtein_within("a", "b", -1) is None

    def test_zero_bound_equal_strings(self):
        assert levenshtein_within("abc", "abc", 0) == 0


class TestDamerau:
    def test_transposition_counts_one(self):
        assert damerau_levenshtein("ab", "ba") == 1
        assert levenshtein("ab", "ba") == 2

    @given(short_text, short_text)
    def test_never_exceeds_levenshtein(self, a, b):
        assert damerau_levenshtein(a, b) <= levenshtein(a, b)


class TestNormalizedSimilarity:
    def test_paper_example(self):
        # §4: Department values of tuples 1 and 3 report similarity 0.86.
        sim = normalized_edit_similarity("315 w hickory st", "315 w hicky st")
        assert sim == pytest.approx(0.867, abs=0.01)

    def test_identical(self):
        assert normalized_edit_similarity("abc", "abc") == 1.0
        assert normalized_edit_similarity("", "") == 1.0

    @given(short_text, short_text)
    def test_bounds(self, a, b):
        assert 0.0 <= normalized_edit_similarity(a, b) <= 1.0


class TestNumericSimilarity:
    def test_equal(self):
        assert numeric_similarity(5.0, 5.0) == 1.0
        assert numeric_similarity(0.0, 0.0) == 1.0

    def test_opposite_signs_floor(self):
        assert numeric_similarity(-1.0, 1.0) == 0.0

    @given(
        st.floats(-1e6, 1e6, allow_nan=False),
        st.floats(-1e6, 1e6, allow_nan=False),
    )
    def test_bounds_and_symmetry(self, x, y):
        s = numeric_similarity(x, y)
        assert 0.0 <= s <= 1.0
        assert s == pytest.approx(numeric_similarity(y, x))


class TestCellSimilarity:
    def test_null_handling(self):
        assert cell_similarity(None, None) == 1.0
        assert cell_similarity(None, "x") == 0.0

    def test_numeric_dispatch(self):
        assert cell_similarity(10, 10, AttrType.INTEGER) == 1.0
        assert cell_similarity(10, 11, AttrType.INTEGER) > 0.8

    def test_dirty_numeric_falls_back_to_string(self):
        # '12x' is unparseable: must not raise, uses edit similarity.
        s = cell_similarity("12x", "12", AttrType.INTEGER)
        assert 0.0 < s < 1.0

    def test_strict_equality(self):
        assert strict_equality_similarity("a", "a") == 1.0
        assert strict_equality_similarity("a", "b") == 0.0
        assert strict_equality_similarity(None, None) == 1.0


class TestPatterns:
    def test_value_mask(self):
        assert value_mask("35150") == "99999"
        assert value_mask("Johnny.R") == "Aaaaaa.A"
        assert value_mask("a b") == "asa"
        assert value_mask(None) == ""

    def test_compressed_mask(self):
        assert value_mask("35150", compress=True) == "9"
        assert value_mask("Johnny.R", compress=True) == "Aa.A"

    def test_profile_rarity(self):
        values = ["11111"] * 99 + ["1a1"]
        profile = PatternProfile(values)
        assert profile.rarity("22222") < 0.5  # same mask as majority
        assert profile.rarity("9x9") > 0.9

    def test_profile_conforms(self):
        profile = PatternProfile(["123", "456", "ab"])
        assert profile.conforms("999")
        assert not profile.conforms("xy")

    def test_empty_profile(self):
        profile = PatternProfile([])
        assert profile.dominant_mask() is None
        assert profile.rarity("x") == 0.0


class TestTokenize:
    def test_word_tokens(self):
        assert word_tokens("315 W Hickory St.") == ["315", "w", "hickory", "st"]
        assert word_tokens(None) == []

    def test_char_ngrams_padding(self):
        grams = char_ngrams("ab", n=3)
        assert "##a" in grams and "b##" in grams

    def test_char_ngrams_null(self):
        assert char_ngrams(None) == []

    def test_language_model_separates_outliers(self):
        values = [f"1{i:04d}" for i in range(100)]
        lm = NgramLanguageModel(values)
        assert lm.score("10042") > lm.score("zzzzz")
