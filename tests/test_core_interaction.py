"""Tests for the user-interaction layer (§4: edit edges, merge nodes)."""

import pytest

from repro.bayesnet.dag import DAG
from repro.core.composition import COMPOSE_SEP, AttributeComposition
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.core.interaction import NetworkEditSession
from repro.errors import CleaningError, CycleError, GraphError


class TestAttributeComposition:
    def test_default_singletons(self):
        comp = AttributeComposition(["a", "b", "c"])
        assert comp.nodes == ["a", "b", "c"]
        assert comp.node_of("b") == "b"
        assert not comp.is_merged("b")

    def test_merge(self):
        comp = AttributeComposition(["a", "b", "c"])
        merged = comp.merge(["a", "b"])
        assert merged == "a+b"
        assert comp.members(merged) == ("a", "b")
        assert comp.node_of("a") == merged
        assert comp.is_merged(merged)
        assert set(comp.nodes) == {merged, "c"}

    def test_merge_single_rejected(self):
        comp = AttributeComposition(["a", "b"])
        with pytest.raises(CleaningError):
            comp.merge(["a"])

    def test_node_value_composition(self):
        comp = AttributeComposition(["a", "b"])
        comp.merge(["a", "b"], name="ab")
        row = {"a": "x", "b": "y"}
        assert comp.node_value("ab", row) == f"x{COMPOSE_SEP}y"
        assert comp.node_value_with("ab", row, "a", "z") == f"z{COMPOSE_SEP}y"

    def test_node_value_null_member(self):
        comp = AttributeComposition(["a", "b"])
        comp.merge(["a", "b"], name="ab")
        assert comp.node_value("ab", {"a": None, "b": "y"}) == f"{COMPOSE_SEP}y"

    def test_node_table(self, customer_table):
        comp = AttributeComposition(customer_table.schema.names)
        comp.merge(["City", "State"], name="loc")
        nt = comp.node_table(customer_table)
        assert "loc" in nt.schema.names
        assert nt.n_rows == customer_table.n_rows
        assert COMPOSE_SEP in nt.cell(0, "loc")

    def test_merge_of_merged(self):
        comp = AttributeComposition(["a", "b", "c"])
        comp.merge(["a", "b"], name="ab")
        comp.merge(["ab", "c"], name="abc")
        assert comp.members("abc") == ("a", "b", "c")


@pytest.fixture
def fitted_engine(dirty_customer_table):
    registry = None
    engine = BClean(BCleanConfig.pi())
    dag = DAG(dirty_customer_table.schema.names)
    dag.add_edge("ZipCode", "City")
    dag.add_edge("ZipCode", "State")
    engine.fit(dirty_customer_table, dag=dag)
    return engine


class TestNetworkEditSession:
    def test_requires_fitted_engine(self):
        with pytest.raises(CleaningError):
            NetworkEditSession(BClean())

    def test_add_remove_edges_staged(self, fitted_engine):
        session = NetworkEditSession(fitted_engine)
        session.add_edge("Name", "ZipCode").remove_edge("ZipCode", "City")
        # engine untouched until commit
        assert fitted_engine.dag.has_edge("ZipCode", "City")
        assert not fitted_engine.dag.has_edge("Name", "ZipCode")
        log = session.commit()
        assert fitted_engine.dag.has_edge("Name", "ZipCode")
        assert not fitted_engine.dag.has_edge("ZipCode", "City")
        assert ("Name", "ZipCode") in log.added_edges
        assert log.touched_nodes == {"ZipCode", "City"}

    def test_reverse_edge(self, fitted_engine):
        session = NetworkEditSession(fitted_engine)
        session.reverse_edge("ZipCode", "City")
        session.commit()
        assert fitted_engine.dag.has_edge("City", "ZipCode")

    def test_cycle_rejected_at_stage_time(self, fitted_engine):
        session = NetworkEditSession(fitted_engine)
        session.add_edge("City", "Name")
        with pytest.raises(CycleError):
            session.add_edge("Name", "City")

    def test_empty_commit_is_noop(self, fitted_engine):
        before = fitted_engine.dag.copy()
        log = NetworkEditSession(fitted_engine).commit()
        assert log.is_empty
        assert fitted_engine.dag == before

    def test_merge_nodes_shared_edges_collapse(self, fitted_engine):
        # City and State both have ZipCode as parent: after merging them
        # the shared incoming edge collapses into one (§4, Fig. 2(h)).
        session = NetworkEditSession(fitted_engine)
        session.merge_nodes(["City", "State"], name="loc")
        log = session.commit()
        assert ("City", "State") in [tuple(m[0]) for m in log.merges] or log.merges
        dag = fitted_engine.dag
        assert "loc" in dag
        assert dag.has_edge("ZipCode", "loc")
        assert "City" not in dag and "State" not in dag

    def test_merge_unknown_node_rejected(self, fitted_engine):
        session = NetworkEditSession(fitted_engine)
        with pytest.raises(GraphError):
            session.merge_nodes(["City", "nope"])

    def test_cleaning_still_works_after_merge(self, fitted_engine):
        session = NetworkEditSession(fitted_engine)
        session.merge_nodes(["City", "State"], name="loc")
        session.commit()
        result = fitted_engine.clean()
        # the merged engine must still repair the State inconsistency
        assert result.cleaned.cell(1, "State") == "CA"

    def test_view_renders(self, fitted_engine):
        text = NetworkEditSession(fitted_engine).view()
        assert "ZipCode" in text
