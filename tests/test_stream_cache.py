"""The session competition cache must be invisible in the results.

The cross-chunk cache (:mod:`repro.exec.cache`) answers recurring
competitions without dispatching — so every configuration of it (on,
off, tightly bounded under eviction pressure, any backend, any chunk
size, foreign tables minting codes mid-stream) must produce repairs
byte-identical to the uncached whole-table run, with only the
``cache_hits`` / ``cache_misses`` / ``cache_evictions`` diagnostics
and wall-clock allowed to differ.  The planner-side helpers (auto
bound, hit/miss partitioning, dedup-aware cost extrapolation) and the
chunked CSV reader's column-naming width errors get unit coverage of
their own.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.dataset.io import iter_csv_chunks
from repro.dataset.table import Table
from repro.errors import CleaningError, CSVFormatError
from repro.exec import (
    CACHE_MAX_ENTRIES,
    CACHE_MIN_ENTRIES,
    CompetitionCache,
    competition_key,
    default_cache_entries,
    extrapolate_stream_cost,
    partition_cached,
)

pytestmark = pytest.mark.fast


def _sig(result):
    """The full, exact repair signature (no tolerance — byte identity)."""
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


@pytest.fixture(scope="module")
def hospital():
    return load_benchmark("hospital", n_rows=60, seed=0)


@pytest.fixture(scope="module")
def engine(hospital):
    eng = BClean(BCleanConfig.pip(), hospital.constraints)
    eng.fit(hospital.dirty)
    return eng


@pytest.fixture(scope="module")
def repeated(hospital):
    """A stream where every signature recurs across chunks: the fitted
    rows repeated three times — the workload the cache exists for."""
    dirty = hospital.dirty
    return Table.from_rows(dirty.schema, dirty.to_rows() * 3)


@pytest.fixture(scope="module")
def repeated_whole(engine, repeated):
    """The uncached whole-table reference every cached run is pinned
    against."""
    return _clean(engine, repeated, chunk_rows=None, cache=0)


def _clean(
    engine, table=None, chunk_rows=None, cache=None, executor="serial", n_jobs=2
):
    cfg = engine.config
    saved = (cfg.chunk_rows, cfg.executor, cfg.n_jobs, cfg.competition_cache)
    cfg.chunk_rows, cfg.executor, cfg.n_jobs, cfg.competition_cache = (
        chunk_rows,
        executor,
        n_jobs,
        cache,
    )
    try:
        return engine.clean(table)
    finally:
        (cfg.chunk_rows, cfg.executor, cfg.n_jobs, cfg.competition_cache) = saved


# -- cache on/off equivalence matrix -------------------------------------------


@pytest.mark.parametrize(
    "chunk_rows,executor",
    ((7, "serial"), (25, "serial"), (60, "serial"), (25, "thread"), (25, "process")),
)
def test_cached_chunked_byte_identical(
    engine, repeated, repeated_whole, chunk_rows, executor
):
    result = _clean(
        engine, repeated, chunk_rows=chunk_rows, cache=None, executor=executor
    )
    assert _sig(result) == _sig(repeated_whole)
    assert result.cleaned == repeated_whole.cleaned
    stream = result.diagnostics["stream"]
    # chunks 2..n replay chunk 1's signatures — the cache must see them
    assert stream["cache_hits"] > 0
    assert stream["cache_misses"] > 0
    # cells counters are cache-invariant (only effort counters differ)
    assert result.stats.cells_total == repeated_whole.stats.cells_total
    assert result.stats.cells_inspected == repeated_whole.stats.cells_inspected


@pytest.mark.parametrize("chunk_rows", (7, 25))
def test_cache_on_off_identical(engine, repeated, chunk_rows):
    on = _clean(engine, repeated, chunk_rows=chunk_rows, cache=None)
    off = _clean(engine, repeated, chunk_rows=chunk_rows, cache=0)
    assert _sig(on) == _sig(off)
    assert on.cleaned == off.cleaned
    off_stream = off.diagnostics["stream"]
    assert off_stream["cache_hits"] == 0
    assert off_stream["cache_misses"] == 0
    assert off_stream["cache_evictions"] == 0
    assert "cache_entries" not in off_stream
    # the competitions-materialised diagnostic counts cached answers
    # too, so it cannot depend on the cache setting
    assert on.diagnostics["cache_size"] == off.diagnostics["cache_size"]


def test_eviction_pressure_byte_identical(engine, repeated, repeated_whole):
    """A bound far below the stream's distinct competition count must
    thrash — and still change nothing but the counters."""
    result = _clean(engine, repeated, chunk_rows=25, cache=8)
    assert _sig(result) == _sig(repeated_whole)
    assert result.cleaned == repeated_whole.cleaned
    stream = result.diagnostics["stream"]
    assert stream["cache_evictions"] > 0
    assert stream["cache_max_entries"] == 8
    assert stream["cache_entries"] <= 8


def test_foreign_stream_with_midstream_minting(engine, repeated):
    """Foreign chunks minting unseen codes mid-stream: minted signatures
    are new keys, recurring ones still hit, results stay pinned."""
    table = repeated.copy()
    names = table.schema.names
    table.set_cell(70, names[1], "UNSEEN-VALUE-A")
    table.set_cell(130, names[2], "UNSEEN-VALUE-B")
    whole = _clean(engine, table, chunk_rows=None, cache=0)
    result = _clean(engine, table, chunk_rows=25, cache=None)
    assert _sig(result) == _sig(whole)
    assert result.cleaned == whole.cleaned
    assert result.diagnostics["exec"]["incremental_encoding"] is True
    assert result.diagnostics["stream"]["cache_hits"] > 0


def test_whole_table_run_never_builds_cache(engine, repeated):
    """An un-chunked clean deduplicates everything in its single plan —
    the cache stays off even when requested explicitly."""
    result = _clean(engine, repeated, chunk_rows=None, cache=1024)
    assert "stream" not in result.diagnostics


# -- the cache itself ----------------------------------------------------------


class TestCompetitionCache:
    def test_hit_miss_and_counters(self):
        cache = CompetitionCache(4)
        key = competition_key(2, 1.0, b"\x01\x02")
        assert cache.get(key) is None
        cache.put(key, (7, -1.5, -0.5))
        assert cache.get(key) == (7, -1.5, -0.5)
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 0)
        assert len(cache) == 1

    def test_lru_eviction_order(self):
        cache = CompetitionCache(2)
        a, b, c = (
            competition_key(0, 1.0, bytes([i])) for i in range(3)
        )
        cache.put(a, (0, 0.0, 0.0))
        cache.put(b, (1, 0.0, 0.0))
        assert cache.get(a) is not None  # touch a → b is now coldest
        cache.put(c, (2, 0.0, 0.0))
        assert cache.evictions == 1
        assert cache.get(b) is None  # evicted
        assert cache.get(a) is not None
        assert cache.get(c) is not None

    def test_put_refreshes_existing_key(self):
        cache = CompetitionCache(2)
        a, b, c = (
            competition_key(0, 1.0, bytes([i])) for i in range(3)
        )
        cache.put(a, (0, 0.0, 0.0))
        cache.put(b, (1, 0.0, 0.0))
        cache.put(a, (9, 1.0, 2.0))  # refresh, no eviction
        assert cache.evictions == 0
        cache.put(c, (2, 0.0, 0.0))  # now b (coldest) goes
        assert cache.get(b) is None
        assert cache.get(a) == (9, 1.0, 2.0)

    def test_weight_and_column_are_part_of_the_key(self):
        cache = CompetitionCache(8)
        cache.put(competition_key(0, 1.0, b"x"), (1, 0.0, 0.0))
        assert cache.get(competition_key(0, 0.5, b"x")) is None
        assert cache.get(competition_key(1, 1.0, b"x")) is None

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            CompetitionCache(0)

    def test_stats_shape(self):
        cache = CompetitionCache(3)
        assert cache.stats() == {
            "cache_hits": 0,
            "cache_misses": 0,
            "cache_evictions": 0,
            "cache_entries": 0,
            "cache_max_entries": 3,
        }


# -- planner helpers -----------------------------------------------------------


class TestPlannerCacheHelpers:
    def test_default_cache_entries_clamps(self):
        assert default_cache_entries(1, 10, 100) == CACHE_MIN_ENTRIES
        assert default_cache_entries(10**9, 10, None) == CACHE_MAX_ENTRIES
        # in between: 2 × (2000 × 1000/100) = 40000
        assert default_cache_entries(2000, 100, 1000) == 40000

    def test_default_cache_entries_degenerate_first_chunk(self):
        """Satellite pin: a first chunk that plans zero competitions
        (every row trusted or pruned) must clamp the auto bound up to
        CACHE_MIN_ENTRIES — never a zero or invalid cache bound."""
        for rows_planned, total_rows in ((25, None), (25, 0), (25, 1000), (0, None)):
            bound = default_cache_entries(0, rows_planned, total_rows)
            assert bound == CACHE_MIN_ENTRIES
            CompetitionCache(bound)  # a valid, constructible bound

    def test_partition_cached_no_cache_is_identity(self):
        uids = np.arange(5)
        miss, hits = partition_cached(None, 0, uids, [], np.ones(5))
        assert miss is uids
        assert hits is None

    def test_partition_cached_splits(self):
        cache = CompetitionCache(16)
        keys = [bytes([i]) for i in range(4)]
        weights = np.ones(4)
        cache.put(competition_key(2, 1.0, keys[1]), (5, -1.0, -0.5))
        cache.put(competition_key(2, 1.0, keys[3]), (-1, -2.0, -2.0))
        cache.put(competition_key(0, 1.0, keys[0]), (9, 0.0, 0.0))  # other col
        miss, hits = partition_cached(
            cache, 2, np.arange(4), keys, weights
        )
        assert list(miss) == [0, 2]
        hit_uids, decided, inc, best = hits
        assert list(hit_uids) == [1, 3]
        assert list(decided) == [5, -1]
        assert list(inc) == [-1.0, -2.0]
        assert list(best) == [-0.5, -2.0]

    def test_extrapolate_dedup_factor(self):
        # linear extrapolation, then the repetition discount
        assert extrapolate_stream_cost(100.0, 10, 100) == pytest.approx(1000.0)
        assert extrapolate_stream_cost(
            100.0, 10, 100, dedup_factor=0.25
        ) == pytest.approx(250.0)
        # unknown total: the cumulative cost itself, discounted
        assert extrapolate_stream_cost(
            100.0, 10, None, dedup_factor=0.5
        ) == pytest.approx(50.0)


# -- config validation ---------------------------------------------------------


def test_config_rejects_negative_cache():
    with pytest.raises(CleaningError):
        BCleanConfig(competition_cache=-1)
    assert BCleanConfig(competition_cache=0).competition_cache == 0


# -- chunked CSV reader: column-naming width errors ----------------------------


class TestCsvWidthErrors:
    def test_is_a_value_error(self):
        assert issubclass(CSVFormatError, ValueError)

    def test_short_row_names_missing_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n4,5\n", encoding="utf-8")
        with pytest.raises(ValueError, match=r"line 3.*ends before column 'c'"):
            list(iter_csv_chunks(path, 1))

    def test_long_row_names_last_column(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3,4,5,6\n", encoding="utf-8")
        with pytest.raises(
            ValueError, match=r"line 3.*2 extra field\(s\) after last column 'b'"
        ):
            list(iter_csv_chunks(path, 10))
