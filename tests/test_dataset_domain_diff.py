"""Tests for repro.dataset.domain and repro.dataset.diff."""

import pytest

from repro.dataset.diff import (
    CellDiff,
    cells_equal,
    diff_cells,
    diff_mask,
    hamming,
)
from repro.dataset.domain import Domain, DomainIndex
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import EvaluationError


class TestDomain:
    def test_from_column_counts(self):
        d = Domain.from_column("a", ["x", "y", "x", None, "x"])
        assert d.size == 2
        assert d.frequency("x") == 3
        assert d.frequency("y") == 1
        assert d.n_null == 1
        assert d.n_total == 5

    def test_values_ordered_by_frequency(self):
        d = Domain.from_column("a", ["y", "x", "x"])
        assert d.values == ["x", "y"]

    def test_relative_frequency(self):
        d = Domain.from_column("a", ["x", "x", "y", "z"])
        assert d.relative_frequency("x") == pytest.approx(0.5)
        assert d.relative_frequency("missing") == 0.0
        assert d.relative_frequency(None) == 0.0

    def test_contains(self):
        d = Domain.from_column("a", ["x"])
        assert "x" in d
        assert "y" not in d

    def test_empty_column(self):
        d = Domain.from_column("a", [])
        assert d.size == 0
        assert d.relative_frequency("x") == 0.0


class TestDomainIndex:
    def test_candidate_values_cap(self, customer_table):
        idx = DomainIndex(customer_table)
        assert len(idx.candidate_values("Name", cap=1)) == 1
        assert idx.candidate_values("Name", cap=1)[0] in ("Johnny.R", "Henry.P")

    def test_total_distinct(self, customer_table):
        idx = DomainIndex(customer_table)
        assert idx.total_distinct() == 3 + 3 + 3 + 3

    def test_getitem(self, customer_table):
        idx = DomainIndex(customer_table)
        assert idx["State"].frequency("CA") == 3


class TestCellsEqual:
    def test_null_equals_null(self):
        assert cells_equal(None, None)
        assert cells_equal(None, "NULL")
        assert not cells_equal(None, "x")

    def test_numeric_canonicalisation(self):
        assert cells_equal(1, "1")
        assert cells_equal("0.5", 0.5)
        assert cells_equal("2.0", "2")
        assert not cells_equal("1", "2")

    def test_inf_nan_strings_compared_verbatim(self):
        assert cells_equal("inf", "inf")
        assert not cells_equal("inf", "1")

    def test_plain_strings(self):
        assert cells_equal("abc", "abc")
        assert not cells_equal("abc", "abd")


class TestDiff:
    def test_no_diff_on_identical(self, customer_table):
        assert diff_cells(customer_table, customer_table.copy()) == []
        assert hamming(customer_table, customer_table) == 0

    def test_diff_found(self, customer_table):
        other = customer_table.copy()
        other.set_cell(2, "City", "boston")
        diffs = diff_cells(customer_table, other)
        assert diffs == [CellDiff(2, "City", "sylacauga", "boston")]
        assert diff_mask(customer_table, other) == {(2, "City")}

    def test_misaligned_rejected(self, customer_table):
        with pytest.raises(EvaluationError):
            diff_cells(customer_table, customer_table.head(2))

    def test_different_schema_rejected(self, customer_table):
        other = Table.from_rows(Schema.of("x"), [["1"]] * customer_table.n_rows)
        with pytest.raises(EvaluationError):
            diff_cells(customer_table, other)
