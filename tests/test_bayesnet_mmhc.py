"""Tests for repro.bayesnet.structure.mmhc (max-min hill-climbing).

Structure recovery is tested on data generated from known dependency
chains: MMPC must select the true neighbours, reject independent
variables, and the combined search must recover edges the data supports
while leaving isolated attributes isolated.
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet.structure.mmhc import (
    g2_statistic,
    independence_p_value,
    mmhc,
    mmpc,
)
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import StructureLearningError


def chain_table(n_rows: int, seed: int, noise: float = 0.05) -> Table:
    """a → b → c with an independent column d."""
    rng = random.Random(seed)
    schema = Schema.of(
        "a:categorical", "b:categorical", "c:categorical", "d:categorical"
    )
    rows = []
    for _ in range(n_rows):
        a = rng.choice(["x", "y", "z"])
        b = a.upper() if rng.random() > noise else rng.choice(["X", "Y", "Z"])
        c = b.lower() if rng.random() > noise else rng.choice(["x", "y", "z"])
        d = rng.choice(["p", "q"])
        rows.append([a, b, c, d])
    return Table.from_rows(schema, rows)


class TestG2:
    def test_independent_columns_small_statistic(self):
        table = chain_table(400, seed=1)
        g2, df = g2_statistic(table, "a", "d")
        # a and d are independent: G² should be near its df expectation.
        assert g2 < 3 * df + 10

    def test_dependent_columns_large_statistic(self):
        table = chain_table(400, seed=2)
        g2_dep, _ = g2_statistic(table, "a", "b")
        g2_ind, _ = g2_statistic(table, "a", "d")
        assert g2_dep > 10 * max(1.0, g2_ind)

    def test_conditioning_breaks_chain_dependency(self):
        table = chain_table(400, seed=3)
        g2_marginal, _ = g2_statistic(table, "a", "c")
        g2_given_b, _ = g2_statistic(table, "a", "c", ["b"])
        assert g2_given_b < g2_marginal

    def test_statistic_is_nonnegative_and_symmetric(self):
        table = chain_table(150, seed=4)
        g2_ab, _ = g2_statistic(table, "a", "b")
        g2_ba, _ = g2_statistic(table, "b", "a")
        assert g2_ab >= 0
        assert g2_ab == pytest.approx(g2_ba)


class TestPValue:
    def test_dependence_detected(self):
        table = chain_table(400, seed=5)
        assert independence_p_value(table, "a", "b") < 0.001

    def test_independence_not_rejected(self):
        table = chain_table(400, seed=6)
        assert independence_p_value(table, "a", "d") > 0.01

    def test_p_value_in_unit_interval(self):
        table = chain_table(100, seed=7)
        for x, y in [("a", "b"), ("a", "d"), ("b", "c")]:
            p = independence_p_value(table, x, y)
            assert 0.0 <= p <= 1.0

    def test_fallback_approximation_close_to_scipy(self):
        """The Wilson–Hilferty fallback must track scipy's χ² tail."""
        from scipy.stats import chi2

        for g2, df in [(3.0, 2), (15.0, 4), (40.0, 9)]:
            exact = float(chi2.sf(g2, df))
            z = ((g2 / df) ** (1 / 3) - (1 - 2 / (9 * df))) / math.sqrt(
                2 / (9 * df)
            )
            approx = 0.5 * math.erfc(z / math.sqrt(2))
            assert approx == pytest.approx(exact, abs=0.01)


class TestMMPC:
    def test_chain_neighbours_recovered(self):
        table = chain_table(500, seed=8)
        assert mmpc(table, "b") >= {"a", "c"}
        assert "d" not in mmpc(table, "b")

    def test_independent_column_has_empty_cpc(self):
        table = chain_table(500, seed=9)
        assert mmpc(table, "d") == set()

    def test_chain_middle_separates_endpoints(self):
        """c ⟂ a | b, so a must not survive the shrink phase for c."""
        table = chain_table(800, seed=10, noise=0.02)
        assert "a" not in mmpc(table, "c")

    def test_unknown_attribute_rejected(self):
        table = chain_table(50, seed=11)
        with pytest.raises(StructureLearningError, match="unknown"):
            mmpc(table, "nope")


class TestMMHC:
    def test_chain_recovered_as_undirected_skeleton(self):
        table = chain_table(500, seed=12)
        result = mmhc(table)
        undirected = {
            frozenset((u, v)) for u, v, _ in result.dag.edges()
        }
        assert frozenset(("a", "b")) in undirected
        assert frozenset(("b", "c")) in undirected

    def test_independent_column_stays_isolated(self):
        table = chain_table(500, seed=13)
        result = mmhc(table)
        assert result.dag.is_isolated("d")

    def test_symmetry_correction_limits_edges(self):
        """Every learned edge must be inside the symmetric CPC relation."""
        table = chain_table(400, seed=14)
        result = mmhc(table)
        for u, v, _ in result.dag.edges():
            assert v in result.cpc[u] and u in result.cpc[v]

    def test_respects_max_parents(self):
        table = chain_table(300, seed=15)
        result = mmhc(table, max_parents=1)
        assert all(
            len(result.dag.parents(n)) <= 1 for n in result.dag.nodes
        )

    def test_diagnostics_populated(self):
        table = chain_table(200, seed=16)
        result = mmhc(table)
        assert result.n_independence_tests > 0
        assert result.n_moves_evaluated > 0
        assert set(result.cpc) == set(table.schema.names)

    def test_rejects_bad_alpha(self):
        table = chain_table(50, seed=17)
        with pytest.raises(StructureLearningError, match="alpha"):
            mmhc(table, alpha=0.0)

    def test_rejects_single_column(self):
        table = Table.from_rows(Schema.of("a:categorical"), [["x"], ["y"]])
        with pytest.raises(StructureLearningError, match="two attributes"):
            mmhc(table)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=10, deadline=None)
    def test_always_returns_acyclic_graph(self, seed):
        table = chain_table(120, seed=seed)
        result = mmhc(table)
        # topological_order raises if the invariant were broken.
        order = result.dag.topological_order()
        assert set(order) == set(table.schema.names)

    def test_score_names_accepted(self):
        table = chain_table(150, seed=18)
        for name in ("bic", "k2", "bdeu"):
            result = mmhc(table, score=name)
            assert result.dag is not None


class TestEngineIntegration:
    def test_engine_accepts_mmhc_structure(self):
        from repro.core.config import BCleanConfig
        from repro.core.engine import BClean

        table = chain_table(200, seed=19)
        config = BCleanConfig.pi()
        config.structure = "mmhc"
        engine = BClean(config)
        engine.fit(table)
        result = engine.clean()
        assert result.cleaned.n_rows == table.n_rows
