"""Tests for repro.dataset.profile (column stats + FD candidates)."""

import math
import random

import pytest

from repro.dataset.profile import (
    fd_candidates,
    profile_column,
    profile_table,
)
from repro.dataset.schema import Schema
from repro.dataset.table import Table


@pytest.fixture
def orders_table() -> Table:
    rng = random.Random(5)
    schema = Schema.of(
        "order_id:categorical", "sku:categorical", "site:categorical"
    )
    mapping = {"S1": "east", "S2": "east", "S3": "west"}
    rows = []
    for i in range(200):
        sku = rng.choice(list(mapping))
        rows.append([f"O{i:05d}", sku, mapping[sku]])
    return Table.from_rows(schema, rows)


class TestProfileColumn:
    def test_basic_counts(self):
        p = profile_column("x", "categorical", ["a", "b", "a", None])
        assert p.n_values == 4
        assert p.n_nulls == 1
        assert p.n_distinct == 2
        assert p.null_fraction == pytest.approx(0.25)

    def test_entropy_uniform_vs_constant(self):
        uniform = profile_column("u", "categorical", ["a", "b", "c", "d"])
        constant = profile_column("c", "categorical", ["a", "a", "a", "a"])
        assert uniform.entropy == pytest.approx(2.0)
        assert constant.entropy == pytest.approx(0.0)

    def test_length_bounds(self):
        p = profile_column("x", "text", ["ab", "abcd", "a"])
        assert (p.min_length, p.max_length) == (1, 4)

    def test_dominant_mask_coverage(self):
        p = profile_column("zip", "categorical", ["12345", "99999", "abcde"])
        assert p.dominant_mask == "9"
        assert p.mask_coverage == pytest.approx(2 / 3)

    def test_key_like_detection(self):
        key = profile_column("id", "categorical", ["a", "b", "c"])
        non_key = profile_column("v", "categorical", ["a", "a", "b"])
        assert key.is_key_like
        assert not non_key.is_key_like

    def test_all_null_column(self):
        p = profile_column("hole", "categorical", [None, None])
        assert p.n_distinct == 0
        assert p.dominant_mask is None
        assert not p.is_key_like

    def test_top_values_ordered(self):
        p = profile_column("x", "categorical", ["a"] * 5 + ["b"] * 2 + ["c"])
        assert p.top_values[0] == ("a", 5)
        assert p.top_values[1] == ("b", 2)


class TestFDCandidates:
    def test_exact_fd_found(self, orders_table):
        fds = fd_candidates(orders_table)
        pairs = {(fd.lhs, fd.rhs) for fd in fds}
        assert ("sku", "site") in pairs

    def test_key_columns_skipped(self, orders_table):
        fds = fd_candidates(orders_table)
        assert all(fd.lhs != "order_id" for fd in fds)

    def test_violations_counted(self, orders_table):
        dirty = orders_table.copy()
        dirty.set_cell(0, "site", "WRONG")
        fds = {
            (fd.lhs, fd.rhs): fd for fd in fd_candidates(dirty, min_confidence=0.5)
        }
        fd = fds[("sku", "site")]
        assert fd.violations == 1
        assert fd.confidence < 1.0

    def test_min_confidence_filters(self, orders_table):
        rng = random.Random(0)
        noisy = orders_table.copy()
        for i in range(0, 60):
            noisy.set_cell(i, "site", rng.choice(["east", "west"]))
        strict = fd_candidates(noisy, min_confidence=0.999)
        assert all((fd.lhs, fd.rhs) != ("sku", "site") for fd in strict)

    def test_str_mentions_confidence(self, orders_table):
        fd = fd_candidates(orders_table)[0]
        assert "confidence" in str(fd)


class TestProfileTable:
    def test_full_profile(self, orders_table):
        profile = profile_table(orders_table)
        assert profile.n_rows == 200
        assert profile.n_cols == 3
        assert {c.name for c in profile.columns} == {
            "order_id",
            "sku",
            "site",
        }
        assert profile.column("order_id").is_key_like

    def test_render_contains_fd_section(self, orders_table):
        text = profile_table(orders_table).render()
        assert "FD candidates" in text
        assert "sku -> site" in text

    def test_unknown_column_raises(self, orders_table):
        with pytest.raises(KeyError):
            profile_table(orders_table).column("nope")

    def test_fds_can_be_disabled(self, orders_table):
        profile = profile_table(orders_table, include_fds=False)
        assert profile.fd_candidates == []
