"""Cross-engine consistency: the §6.1 equivalence, tested four ways.

BClean's partitioned inference rests on one claim: with every other
attribute observed, the Markov-blanket posterior equals the exact
posterior.  For random tree-structured networks this must hold across
all four inference engines of the substrate — variable elimination
(exact), belief propagation (exact on trees), the Markov-blanket
shortcut (exact under full evidence), and Gibbs sampling (in the
large-sample limit, so it is held to a looser tolerance).
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet.beliefprop import BeliefPropagation
from repro.bayesnet.dag import DAG
from repro.bayesnet.inference import VariableElimination, markov_blanket_posterior
from repro.bayesnet.model import DiscreteBayesNet
from repro.bayesnet.sampling import GibbsSampler
from repro.dataset.schema import Schema
from repro.dataset.table import Table

VALUES = ["a", "b", "c"]


def random_tree_bn(seed: int, n_nodes: int = 4, n_rows: int = 80) -> DiscreteBayesNet:
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(n_nodes)]
    schema = Schema.of(*[f"{n}:categorical" for n in names])
    rows = [[rng.choice(VALUES) for _ in names] for _ in range(n_rows)]
    table = Table.from_rows(schema, rows)
    dag = DAG(names)
    for i in range(1, n_nodes):
        dag.add_edge(names[rng.randrange(i)], names[i])
    return DiscreteBayesNet.fit(table, dag, alpha=0.5)


def full_evidence(bn, target, seed):
    rng = random.Random(seed)
    return {v: rng.choice(VALUES) for v in bn.nodes if v != target}


@given(seed=st.integers(0, 5000), target_idx=st.integers(0, 3))
@settings(max_examples=20, deadline=None)
def test_exact_engines_agree_under_full_evidence(seed, target_idx):
    bn = random_tree_bn(seed)
    target = bn.nodes[target_idx]
    evidence = full_evidence(bn, target, seed + 1)

    p_ve = VariableElimination(bn).query(target, evidence)
    p_bp = BeliefPropagation(bn).query(target, evidence)
    p_mb = markov_blanket_posterior(bn, target, evidence)

    for value in p_ve:
        assert p_bp[value] == pytest.approx(p_ve[value], abs=1e-7)
        assert p_mb[value] == pytest.approx(p_ve[value], abs=1e-7)


@given(seed=st.integers(0, 5000))
@settings(max_examples=5, deadline=None)
def test_gibbs_tracks_exact_posterior(seed):
    bn = random_tree_bn(seed)
    target = bn.nodes[0]
    evidence = full_evidence(bn, target, seed + 1)

    p_ve = VariableElimination(bn).query(target, evidence)
    p_gibbs = GibbsSampler(bn, seed=seed).query(
        target, evidence, n_samples=3000, burn_in=300
    )
    for value in p_ve:
        assert p_gibbs.get(value, 0.0) == pytest.approx(p_ve[value], abs=0.08)


@given(seed=st.integers(0, 5000))
@settings(max_examples=10, deadline=None)
def test_map_decision_is_engine_independent(seed):
    """The repair decision (arg-max) must not depend on the engine —
    unless the posterior is nearly tied, where float noise may flip it."""
    bn = random_tree_bn(seed)
    target = bn.nodes[1]
    evidence = full_evidence(bn, target, seed + 2)

    p_ve = VariableElimination(bn).query(target, evidence)
    ranked = sorted(p_ve.values(), reverse=True)
    if len(ranked) > 1 and ranked[0] - ranked[1] < 1e-6:
        return  # genuine tie: arg-max order is unspecified

    map_ve = max(p_ve, key=p_ve.get)
    map_bp = BeliefPropagation(bn).map_value(target, evidence)
    p_mb = markov_blanket_posterior(bn, target, evidence)
    map_mb = max(p_mb, key=p_mb.get)
    assert map_bp == map_ve
    assert map_mb == map_ve
