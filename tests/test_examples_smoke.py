"""Smoke tests: the fast example scripts must run end to end.

Examples are the first thing a new user executes; a broken example is a
broken front door.  Each script runs in a subprocess (its own
interpreter, like a user would) and must exit 0 with its headline
output present.  The deliberately slow demos (soccer_scaling, the full
hospital pipeline) are exercised by the benchmark suite instead.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: subprocesses don't inherit the pytest-ini pythonpath — export src so
#: the smoke tests pass without a manual PYTHONPATH prefix
_ENV = dict(os.environ)
_ENV["PYTHONPATH"] = (
    str(EXAMPLES.parent / "src") + os.pathsep + _ENV.get("PYTHONPATH", "")
)

FAST_EXAMPLES = {
    "quickstart.py": "Repairs",
    "custom_dataset_ucs.py": "repairs",
    "inference_tradeoffs.py": "Markov blanket",
    "detect_then_review.py": "detection quality",
}


@pytest.mark.parametrize("script,marker", sorted(FAST_EXAMPLES.items()))
def test_example_runs(script, marker):
    path = EXAMPLES / script
    assert path.exists(), f"missing example {script}"
    proc = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
        env=_ENV,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert marker.lower() in proc.stdout.lower(), (
        f"{script} output missing {marker!r}"
    )


def test_every_example_has_module_docstring():
    for script in EXAMPLES.glob("*.py"):
        first = script.read_text(encoding="utf-8").lstrip()
        assert first.startswith('"""'), f"{script.name} lacks a docstring"
