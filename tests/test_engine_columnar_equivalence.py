"""The columnar fast path must be decision-identical to the scalar oracle.

The engine keeps two cleaning paths: the original per-cell dict walk
(``use_columnar=False``, the reference) and the columnar path (integer
codes, batched blanket scoring, deduplicated competitions).  These tests
run both over real benchmark samples in every inference mode and demand
*identical* repair lists — same cells, same values, scores within 1e-9 —
plus matching work counters, so the fast path can never drift from the
semantics the paper reproduction is tested against.
"""

from __future__ import annotations

import pytest

from repro.core.composition import AttributeComposition
from repro.core.config import BCleanConfig, InferenceMode
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark

SAMPLES = (("hospital", 80), ("flights", 100))
MODES = tuple(InferenceMode)


def run_both(dataset: str, n_rows: int, mode: InferenceMode):
    instance = load_benchmark(dataset, n_rows=n_rows, seed=0)
    results = {}
    for columnar in (False, True):
        config = BCleanConfig(mode=mode, use_columnar=columnar)
        engine = BClean(config, instance.constraints)
        engine.fit(instance.dirty)
        result = engine.clean()
        assert result.diagnostics["columnar"] is columnar
        results[columnar] = result
    return results[False], results[True]


@pytest.mark.parametrize("dataset,n_rows", SAMPLES)
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
def test_identical_repairs_and_scores(dataset, n_rows, mode):
    scalar, columnar = run_both(dataset, n_rows, mode)

    assert [
        (r.row, r.attribute, r.old_value, r.new_value) for r in scalar.repairs
    ] == [
        (r.row, r.attribute, r.old_value, r.new_value) for r in columnar.repairs
    ]
    for s, c in zip(scalar.repairs, columnar.repairs):
        assert s.old_score == pytest.approx(c.old_score, abs=1e-9)
        assert s.new_score == pytest.approx(c.new_score, abs=1e-9)
    assert scalar.cleaned == columnar.cleaned


@pytest.mark.parametrize("dataset,n_rows", SAMPLES)
@pytest.mark.parametrize("mode", MODES, ids=[m.value for m in MODES])
def test_identical_work_counters(dataset, n_rows, mode):
    scalar, columnar = run_both(dataset, n_rows, mode)
    for field in (
        "cells_total",
        "cells_inspected",
        "cells_skipped_pruning",
        "candidates_evaluated",
        "candidates_filtered_uc",
        "repairs_made",
    ):
        assert getattr(scalar.stats, field) == getattr(
            columnar.stats, field
        ), field


def test_merged_composition_falls_back_to_scalar():
    """Merged-node compositions are outside the coded contract; the
    engine must route them through the oracle, not crash."""
    instance = load_benchmark("flights", n_rows=60, seed=0)
    names = instance.dirty.schema.names
    composition = AttributeComposition(names)
    composition.merge([names[2], names[3]])
    engine = BClean(BCleanConfig.pi(), instance.constraints)
    engine.fit(instance.dirty, composition=composition)
    result = engine.clean()
    assert result.diagnostics["columnar"] is False
    assert result.stats.cells_total == instance.dirty.n_cells


def test_mutated_fitted_table_falls_back_to_scalar():
    """Mutating the fitted table between fit() and clean() invalidates
    the interning snapshot; the engine must detect it and read the live
    cells through the scalar path — never emit a repair whose old and
    new value are the same cell."""
    instance = load_benchmark("hospital", n_rows=60, seed=0)
    dirty = instance.dirty
    engine = BClean(BCleanConfig.pi(), instance.constraints)
    engine.fit(dirty)
    reference = engine.clean()
    assert reference.diagnostics["columnar"] is True
    assert reference.repairs, "fixture must propose at least one repair"

    # Pre-apply the engine's own first repair by hand, then re-clean.
    first = reference.repairs[0]
    dirty.set_cell(first.row, first.attribute, first.new_value)
    result = engine.clean()
    assert result.diagnostics["columnar"] is False
    assert (first.row, first.attribute) not in {
        (r.row, r.attribute) for r in result.repairs
    }
    for r in result.repairs:
        assert r.old_value != r.new_value


def test_foreign_table_stays_columnar_and_matches_scalar():
    """Cleaning a table other than the fitted one stays on the fast path
    through incremental encoding and must match the scalar oracle."""
    instance = load_benchmark("hospital", n_rows=60, seed=0)
    engine = BClean(BCleanConfig.pi(), instance.constraints)
    engine.fit(instance.dirty)
    other = instance.dirty.copy()
    result = engine.clean(other)
    assert result.diagnostics["columnar"] is True
    assert result.diagnostics["exec"]["incremental_encoding"] is True
    assert result.stats.cells_total == other.n_cells

    oracle_engine = BClean(
        BCleanConfig.pi(use_columnar=False), instance.constraints
    )
    oracle_engine.fit(instance.dirty)
    oracle = oracle_engine.clean(other)
    assert [
        (r.row, r.attribute, r.old_value, r.new_value) for r in result.repairs
    ] == [
        (r.row, r.attribute, r.old_value, r.new_value) for r in oracle.repairs
    ]
    for got, want in zip(result.repairs, oracle.repairs):
        assert got.old_score == pytest.approx(want.old_score, abs=1e-9)
        assert got.new_score == pytest.approx(want.new_score, abs=1e-9)


def test_foreign_table_larger_than_fitted():
    """Per-row confidence weights belong to the fitted table; cleaning a
    *longer* foreign table with constraints active must not index past
    them (regression: IndexError in the scalar fallback)."""
    instance = load_benchmark("hospital", n_rows=40, seed=0)
    engine = BClean(BCleanConfig.pi(), instance.constraints)
    engine.fit(instance.dirty)
    assert engine.confidences is not None
    bigger = load_benchmark("hospital", n_rows=70, seed=0).dirty
    result = engine.clean(bigger)
    assert result.stats.cells_total == bigger.n_cells


def test_id_like_contexts_stay_sparse():
    """Near-unique (id-like) context values are each probed by a single
    competition; the co-occurrence index must keep probing them at pool
    size instead of densifying a card-sized profile per distinct value."""
    from repro.dataset.schema import Schema
    from repro.dataset.table import Table

    n = 300
    rows = [[f"id{i}", f"code{i}", f"grp{i % 3}"] for i in range(n)]
    table = Table.from_rows(Schema.of("a:text", "b:text", "c:categorical"), rows)
    engine = BClean(BCleanConfig.pi())
    engine.fit(table)
    engine.clean()
    cached_cells = sum(
        sum(len(p) for p in stats.count_profiles.values())
        + sum(len(p) for p in stats.corr_profiles.values())
        for stats in engine.cooc._pair.values()
    )
    # Only the 3 repeated grp contexts (×2 directions ×2 target attrs
    # ×2 profile kinds) may densify — each profile is ≤ card+1 long.
    assert cached_cells < 30 * (n + 2), cached_cells
