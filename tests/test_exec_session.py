"""Persistent execution sessions must amortise, never alter.

One ``clean()`` is one :class:`~repro.exec.session.ExecSession`: a
chunked ``process`` clean creates exactly one worker pool and ships the
static fit-statistics snapshot exactly once, while repairs stay
byte-identical to the serial whole-table run for every combination of
``persistent_pool`` × chunk size × backend.  On top of the end-to-end
matrix: the session/backend lifecycle units, the broken-pool fallback
diagnostics (``shm_bytes`` must reset with ``shm_used``; "pool never
came up" and "pool died mid-session" are distinguishable), the
untracked worker-side shm attach, the whole-stream auto-executor
resolution, and the header-only ``clean_csv`` degenerate case.
"""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.dataset.io import read_csv, write_csv
from repro.errors import CleaningError
from repro.exec import ExecSession, Shard, extrapolate_stream_cost
from repro.exec import shm as shm_transport
from repro.exec.backends import ProcessBackend

pytestmark = pytest.mark.fast


def _sig(result):
    """The full, exact repair signature (no tolerance — byte identity)."""
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


@pytest.fixture(scope="module")
def hospital():
    return load_benchmark("hospital", n_rows=60, seed=0)


@pytest.fixture(scope="module")
def engine(hospital):
    eng = BClean(BCleanConfig.pip(), hospital.constraints)
    eng.fit(hospital.dirty)
    return eng


@pytest.fixture(scope="module")
def reference(engine):
    """The whole-table serial clean every session run is pinned against."""
    return engine.clean()


def _clean(engine, chunk_rows, executor, persistent, n_jobs=2):
    config = engine.config
    saved = (
        config.chunk_rows,
        config.executor,
        config.n_jobs,
        config.persistent_pool,
    )
    config.chunk_rows = chunk_rows
    config.executor = executor
    config.n_jobs = n_jobs
    config.persistent_pool = persistent
    try:
        return engine.clean()
    finally:
        (
            config.chunk_rows,
            config.executor,
            config.n_jobs,
            config.persistent_pool,
        ) = saved


# -- session reuse equivalence: persistent × chunk size × backend ---------------


@pytest.mark.parametrize("persistent", (True, False), ids=["warm", "cold"])
@pytest.mark.parametrize("chunk_rows", (None, 7, 25))
def test_process_session_byte_identical(
    engine, reference, persistent, chunk_rows
):
    result = _clean(engine, chunk_rows, "process", persistent)
    assert _sig(result) == _sig(reference)
    assert result.cleaned == reference.cleaned


@pytest.mark.parametrize("persistent", (True, False), ids=["warm", "cold"])
@pytest.mark.parametrize("executor", ("serial", "thread"))
def test_other_backends_ignore_persistence_byte_identical(
    engine, reference, persistent, executor
):
    result = _clean(engine, 11, executor, persistent)
    assert _sig(result) == _sig(reference)
    assert result.cleaned == reference.cleaned


# -- the amortisation contract --------------------------------------------------


def test_chunked_process_one_pool_one_snapshot(engine, reference):
    """The acceptance pin: a chunked process clean creates exactly one
    pool and ships the snapshot exactly once — per clean, not per
    chunk."""
    result = _clean(engine, 7, "process", persistent=True)
    stream = result.diagnostics["stream"]
    assert stream["n_chunks"] == 9
    assert stream["backends"] == {"process": 9}
    assert stream["pools_created"] == 1
    assert stream["snapshot_ships"] == 1
    assert _sig(result) == _sig(reference)


def test_no_persistent_pool_restores_per_chunk_costs(engine, reference):
    result = _clean(engine, 7, "process", persistent=False)
    stream = result.diagnostics["stream"]
    assert stream["n_chunks"] == 9
    assert stream["pools_created"] == 9
    assert stream["snapshot_ships"] == 9
    assert _sig(result) == _sig(reference)


def test_serial_stream_creates_no_pools(engine):
    result = _clean(engine, 7, "serial", persistent=True)
    stream = result.diagnostics["stream"]
    assert stream["pools_created"] == 0
    assert stream["snapshot_ships"] == 0


def test_parallel_fit_shares_one_pool(hospital):
    """The pair job and the CPT job of one fit() ride the same session:
    one pool, one coded-columns ship."""
    eng = BClean(
        BCleanConfig.pip(fit_executor="process", n_jobs=2, structure="mmhc"),
        hospital.constraints,
    )
    eng.fit(hospital.dirty)
    result = eng.clean()
    fit_diag = result.diagnostics["fit_exec"]
    assert fit_diag["pair_shards"] >= 1
    assert fit_diag["cpt_shards"] >= 1
    assert fit_diag["pools_created"] == 1
    assert fit_diag["snapshot_ships"] == 1

    serial = BClean(
        BCleanConfig.pip(structure="mmhc"), hospital.constraints
    )
    serial.fit(hospital.dirty)
    assert _sig(result) == _sig(serial.clean())


def test_fit_auto_rides_warm_pool(hospital, monkeypatch):
    """A fit job below the auto threshold still dispatches to process
    when an earlier job of the same session already warmed the pool —
    the fixed costs are sunk, idling the workers would waste them."""
    import numpy as np_

    from repro.exec import fit as fit_mod

    table = hospital.dirty
    enc = table.encode()
    names = table.schema.names
    state = fit_mod.build_fit_state(
        enc, names, np_.ones(table.n_rows, dtype=np_.float64)
    )
    session = ExecSession(state, n_jobs=2)
    try:
        monkeypatch.setattr(fit_mod, "AUTO_FIT_COST_THRESHOLD", 0.0)
        _, _, first = fit_mod.run_fit_job(
            state, [(0, 1), (0, 2), (1, 2)], (), "auto", 2, session=session
        )
        if first.get("process_fallback"):  # pragma: no cover - no pools
            pytest.skip("host cannot run process pools")
        assert first["fit_executor"] == "process"
        monkeypatch.setattr(fit_mod, "AUTO_FIT_COST_THRESHOLD", 1e18)
        # equal-cost tasks so the plan cuts >1 shard (the sticky upgrade
        # only applies where parallelism can exist at all)
        _, _, second = fit_mod.run_fit_job(
            state, (), [(0, ()), (3, ())], "auto", 2, session=session
        )
        assert second["fit_executor"] == "process"
        assert session.pools_created == 1
        assert session.snapshot_ships == 1
    finally:
        session.close()


def test_fit_session_rejects_mismatched_job(hospital):
    """A session built over one snapshot must refuse a job described
    with different weights instead of silently counting its own."""
    import numpy as np_

    from repro.exec import sharded_pair_arrays

    table = hospital.dirty
    enc = table.encode()
    names = table.schema.names
    ones = np_.ones(table.n_rows, dtype=np_.float64)
    from repro.exec import build_fit_state

    session = ExecSession(build_fit_state(enc, names, ones), n_jobs=2)
    try:
        with pytest.raises(CleaningError, match="does not match"):
            sharded_pair_arrays(
                enc, names, ones * 2.0, "serial", 2, session=session
            )
    finally:
        session.close()


# -- backend lifecycle units ----------------------------------------------------


class _EchoState:
    """A picklable stand-in snapshot whose kernel echoes its inputs."""

    def __init__(self):
        self.payload_arrays = np.arange(8192, dtype=np.int64)

    def run_shard(self, shard, payload):
        return (int(shard.shard_id), int(np.asarray(payload["x"]).sum()))


def _shards(n):
    return [Shard(i, 0, "a", np.arange(1)) for i in range(n)]


def test_process_backend_reuses_pool_across_dispatches():
    backend = ProcessBackend(2, persistent=True)
    backend.open(_EchoState())
    try:
        first = backend.dispatch({"x": np.array([1, 2])}, _shards(2))
        second = backend.dispatch({"x": np.array([10])}, _shards(3))
    finally:
        backend.close()
    if backend.fell_back:  # pragma: no cover - hosts without process pools
        pytest.skip("host cannot run process pools")
    assert first == [(0, 3), (1, 3)]
    assert second == [(0, 10), (1, 10), (2, 10)]
    assert backend.pools_created == 1
    assert backend.snapshot_ships == 1


def test_process_backend_broken_pool_resets_shm_diagnostics():
    """Satellite pin: a pool lost mid-session must reset shm_used *and*
    shm_bytes together, flag the break distinctly from a pool that
    never came up, and degrade every later dispatch to serial."""
    backend = ProcessBackend(2, persistent=True)
    backend.open(_EchoState())
    try:
        backend.dispatch({"x": np.array([1])}, _shards(2))
        if backend.fell_back:  # pragma: no cover - no process pools here
            pytest.skip("host cannot run process pools")
        had_shm = backend.shm_used

        class _BrokenPool:
            def map(self, fn, tasks):
                raise BrokenProcessPool("workers died")

            def shutdown(self, wait=True):
                pass

        real_pool = backend._pool
        backend._pool = _BrokenPool()
        try:
            result = backend.dispatch({"x": np.array([5])}, _shards(2))
        finally:
            real_pool.shutdown(wait=True)
        assert result == [(0, 5), (1, 5)]  # serial fallback still answers
        assert backend.fell_back is True
        assert backend.pool_broken is True
        assert backend.ran_serially is True
        assert backend.shm_used is False
        assert backend.shm_bytes == 0  # the bug: this kept a stale value
        assert had_shm or True  # diagnostic pairing holds either way
        # Degraded for the rest of the session: no pool resurrection.
        again = backend.dispatch({"x": np.array([7])}, _shards(2))
        assert again == [(0, 7), (1, 7)]
        assert backend.pools_created == 1
    finally:
        backend.close()


def test_process_backend_pool_never_created_is_not_broken(monkeypatch):
    from repro.exec import backends as backends_mod

    def _refuse(*args, **kwargs):
        raise OSError("no semaphores here")

    monkeypatch.setattr(backends_mod, "ProcessPoolExecutor", _refuse)
    backend = ProcessBackend(2, persistent=True)
    backend.open(_EchoState())
    try:
        result = backend.dispatch({"x": np.array([3])}, _shards(2))
    finally:
        backend.close()
    assert result == [(0, 3), (1, 3)]
    assert backend.fell_back is True
    assert backend.pool_broken is False  # never came up ≠ broke mid-run
    assert backend.shm_used is False
    assert backend.shm_bytes == 0
    assert backend.pools_created == 0
    assert backend.snapshot_ships == 0


def test_session_lazy_backends_and_close():
    session = ExecSession(_EchoState(), n_jobs=2)
    assert session.pools_created == 0
    results = session.dispatch("serial", {"x": np.array([4])}, _shards(2))
    assert results == [(0, 4), (1, 4)]
    assert list(session._backends) == ["serial"]
    session.close()
    with pytest.raises(CleaningError):
        session.dispatch("serial", {"x": np.array([1])}, _shards(1))
    session.close()  # idempotent


# -- untracked shm attach -------------------------------------------------------


def test_shm_attach_leaves_no_tracker_registration(monkeypatch):
    """Satellite pin: attaching must not (net-)register the segment with
    the attacher's resource tracker — the owner alone manages the
    segment's lifetime, so a worker's tracker must never learn the
    name (suppression, not register-then-unregister: with a shared
    tracker an unregister would strip the owner's entry)."""
    packed = shm_transport.pack({"a": np.arange(4096, dtype=np.int64)})
    if packed is None:
        pytest.skip("no shared memory on this host")
    from multiprocessing import resource_tracker

    registered: list = []
    original = resource_tracker.register
    monkeypatch.setattr(
        resource_tracker,
        "register",
        lambda name, rtype: registered.append((name, rtype)),
    )
    try:
        obj, segment = shm_transport.unpack(packed.shell)
        assert np.array_equal(obj["a"], np.arange(4096))
        shm_entries = [r for r in registered if r[1] == "shared_memory"]
        assert shm_entries == []
        del obj
        segment.close()
    finally:
        monkeypatch.setattr(resource_tracker, "register", original)
        packed.release()


def test_pack_min_bytes_gates_small_payloads():
    obj = {"a": np.arange(16, dtype=np.int64)}  # 128 out-of-band bytes
    assert shm_transport.pack(obj, min_bytes=1 << 20) is None
    packed = shm_transport.pack(obj)
    if packed is None:
        pytest.skip("no shared memory on this host")
    packed.release()


# -- whole-stream auto resolution -----------------------------------------------


class TestStreamAutoResolution:
    def test_extrapolation_with_known_total(self):
        # 10 of 100 rows planned at cost 50 → whole stream ≈ 500.
        assert extrapolate_stream_cost(50.0, 10, 100) == pytest.approx(500.0)

    def test_unknown_total_uses_cumulative(self):
        assert extrapolate_stream_cost(50.0, 10, None) == 50.0

    def test_overplanned_total_uses_cumulative(self):
        assert extrapolate_stream_cost(50.0, 10, 10) == 50.0
        assert extrapolate_stream_cost(50.0, 10, 5) == 50.0

    def test_degenerate_rows(self):
        assert extrapolate_stream_cost(0.0, 0, 100) == 0.0

    def test_chunked_auto_resolves_like_whole_table(
        self, engine, reference, monkeypatch
    ):
        """With the threshold forced below the table's cost, *every*
        chunk of an auto stream resolves to process — the first chunk
        already sees the extrapolated whole-stream cost, so small
        blocks no longer flap to serial."""
        from repro.exec import planner, stream

        monkeypatch.setattr(
            stream,
            "resolve_executor",
            lambda req, cost, n_shards, n_jobs, **kw: (
                planner.resolve_executor(req, cost, n_shards, n_jobs, threshold=1.0)
            ),
        )
        result = _clean(engine, 7, "auto", persistent=True)
        stream_diag = result.diagnostics["stream"]
        assert stream_diag["backends"].get("process", 0) >= 8
        assert stream_diag["pools_created"] == 1
        assert _sig(result) == _sig(reference)

    def test_non_persistent_auto_bills_each_chunk(self, engine, monkeypatch):
        """Without a persistent pool every process dispatch re-pays the
        spawn + snapshot ship, so auto must judge each chunk on its own
        cost; only a warm session bills the whole stream's."""
        from repro.exec import stream

        original = stream.resolve_executor
        costs = {}
        for label, persistent in (("warm", True), ("cold", False)):
            seen = costs[label] = []

            def _spy(req, cost, n_shards, n_jobs, _seen=seen, **kw):
                _seen.append(cost)
                return original(req, cost, n_shards, n_jobs, **kw)

            monkeypatch.setattr(stream, "resolve_executor", _spy)
            _clean(engine, 7, "auto", persistent=persistent)
        assert len(costs["warm"]) == len(costs["cold"]) == 9
        # The warm stream's first decision already sees the extrapolated
        # whole-stream cost; cold decisions see one chunk each.
        assert costs["warm"][0] > max(costs["cold"]) * 1.5
        assert costs["cold"][0] * 5 < costs["warm"][0]

    def test_tiny_auto_stream_stays_serial(self, engine, reference):
        result = _clean(engine, 7, "auto", persistent=True)
        stream_diag = result.diagnostics["stream"]
        assert stream_diag["backends"] == {"serial": 9}
        assert stream_diag["pools_created"] == 0
        assert _sig(result) == _sig(reference)


# -- degenerate clean_csv -------------------------------------------------------


def test_clean_csv_header_only_source(engine, tmp_path):
    """Satellite pin: a header-only CSV yields zero chunks — the
    destination must still get a header row and the result must be a
    well-formed empty CleaningResult, not a partial output."""
    schema = engine.table.schema
    src = tmp_path / "empty_in.csv"
    dst = tmp_path / "empty_out.csv"
    src.write_text(",".join(schema.names) + "\n", encoding="utf-8")
    result = engine.clean_csv(src, dst)
    assert result.repairs == []
    assert result.cleaned is None
    assert result.stats.cells_total == 0
    assert result.stats.repairs_made == 0
    stream = result.diagnostics["stream"]
    assert stream["n_chunks"] == 0
    assert stream["pools_created"] == 0
    out = read_csv(dst, schema=schema)
    assert out.n_rows == 0
    assert out.schema.names == schema.names


def test_clean_csv_roundtrip_uses_streaming_writer(engine, tmp_path):
    """write_csv streams rows onto the handle (no whole-file string);
    its output must stay byte-compatible with the chunked reader."""
    import repro.dataset.io as io_mod

    def _boom(*args, **kwargs):  # pragma: no cover - failure is the point
        raise AssertionError("write_csv must not render the whole table")

    table = engine.table
    src = tmp_path / "dirty.csv"
    with pytest.MonkeyPatch.context() as mp:
        mp.setattr(io_mod, "to_csv_text", _boom)
        write_csv(table, src)
    assert read_csv(src, schema=table.schema) == table


# -- session lifecycle: idempotent close, refcounts, error paths ----------------


def test_session_double_close_invokes_backend_once():
    """Satellite pin: close() is documented idempotent — a second call
    must not re-invoke backend.close() or emit a second session_close
    trace event."""
    from repro.obs.tracer import Tracer

    tracer = Tracer()
    session = ExecSession(_EchoState(), n_jobs=2, tracer=tracer)
    session.dispatch("serial", {"x": np.array([1])}, _shards(1))
    backend = session._backends["serial"]
    calls = []
    original = backend.close
    backend.close = lambda: (calls.append(1), original())[1]
    session.close()
    session.close()
    session.close()
    assert calls == [1]
    closes = [e for e in tracer._events if e.get("name") == "session_close"]
    assert len(closes) == 1


def test_session_refcount_lifecycle():
    """acquire/release share one session across holders: the pool dies
    with the last reference, never before."""
    session = ExecSession(_EchoState(), n_jobs=2)
    assert session.acquire() is session  # second holder
    session.release()
    assert not session.closed  # first holder still owns it
    session.release()
    assert session.closed
    session.release()  # releasing a closed session is a no-op
    with pytest.raises(CleaningError):
        session.acquire()  # a closed session cannot be revived


def test_clean_csv_midstream_error_closes_session_and_shm(
    hospital, tmp_path
):
    """Satellite pin: a CSVFormatError raised by a *middle* chunk of
    clean_csv must still close the session — exactly one session_close
    span — and unlink the shm snapshot segment."""
    from pathlib import Path as _Path

    from repro.errors import CSVFormatError

    engine = BClean(
        BCleanConfig.pip(
            executor="process", n_jobs=2, chunk_rows=7, profile=True
        ),
        hospital.constraints,
    )
    engine.fit(hospital.dirty)
    src = tmp_path / "dirty.csv"
    dst = tmp_path / "clean.csv"
    write_csv(hospital.dirty, src)
    lines = src.read_text(encoding="utf-8").splitlines()
    lines[31] = lines[31] + ",extra-field"  # row 31 -> the 5th chunk
    src.write_text("\n".join(lines) + "\n", encoding="utf-8")

    shm_dir = _Path("/dev/shm")
    before = (
        {p.name for p in shm_dir.iterdir()} if shm_dir.is_dir() else None
    )
    tracer = engine._obs
    mark = tracer.mark()
    with pytest.raises(CSVFormatError):
        engine.clean_csv(src, dst)
    closes = [
        e
        for e in tracer._events[mark:]
        if e.get("name") == "session_close"
    ]
    assert len(closes) == 1
    if before is not None:
        after = {p.name for p in shm_dir.iterdir()}
        assert after - before == set()  # no leaked snapshot segments
