"""Tracing must be free when off and invisible in the results when on.

Off: the disabled default is a shared no-op singleton, dispatch tasks
keep the exact pre-tracing 3-tuple wire format (byte-identical
pickles), and diagnostics carry no ``profile`` key.  On: repairs stay
byte-identical to the untraced run on every backend, the exported
Chrome trace validates (every event nests inside its parent), all
seven streaming stages appear once per chunk, and worker shard spans
ride their own tracks.
"""

from __future__ import annotations

import json
import os
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.core.repairs import Stopwatch
from repro.data.benchmark import load_benchmark
from repro.exec import backends as backends_mod
from repro.exec.backends import ProcessBackend, SerialBackend, ThreadBackend
from repro.exec.planner import Shard
from repro.obs import (
    DRIVER_TID,
    NULL_TRACER,
    STAGES,
    Span,
    Tracer,
    validate_chrome_trace,
)

pytestmark = pytest.mark.fast


def _sig(result):
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


@pytest.fixture(scope="module")
def hospital():
    return load_benchmark("hospital", n_rows=60, seed=0)


@pytest.fixture(scope="module")
def engine(hospital):
    eng = BClean(BCleanConfig.pip(), hospital.constraints)
    eng.fit(hospital.dirty)
    return eng


@pytest.fixture(scope="module")
def reference(engine):
    return engine.clean()


def _traced_clean(engine, trace_path, chunk_rows=None, executor="serial"):
    config = engine.config
    saved = (config.chunk_rows, config.executor, config.n_jobs)
    config.chunk_rows, config.executor, config.n_jobs = chunk_rows, executor, 2
    try:
        return engine.clean(trace=str(trace_path) if trace_path else None)
    finally:
        config.chunk_rows, config.executor, config.n_jobs = saved


# -- tracer unit behaviour -----------------------------------------------------


class TestTracerUnit:
    def test_null_tracer_is_allocation_free(self):
        assert NULL_TRACER.enabled is False
        # one shared no-op span serves every disabled call site
        assert NULL_TRACER.span("a") is NULL_TRACER.span("b", cat="x", k=1)
        assert NULL_TRACER.profile() == {}
        assert NULL_TRACER.mark() == 0
        NULL_TRACER.add_counter("n", 3)  # no state to mutate
        NULL_TRACER.instant("x")
        NULL_TRACER.add_worker_spans("s", [(0, 0.0, 1.0, 2)], lo=0.0, hi=1.0)

    def test_standalone_span_times_even_on_exception(self):
        span = Span("boom")
        with pytest.raises(ValueError):
            with span:
                raise ValueError("x")
        assert span.seconds >= 0.0

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.add_counter("bytes", 10)
        tracer.add_counter("bytes", 5)
        tracer.add_counter("hits")
        assert tracer.counters == {"bytes": 15.0, "hits": 1.0}

    def test_mark_scopes_profile(self):
        tracer = Tracer()
        with tracer.span("plan", cat="stream"):
            pass
        mark = tracer.mark()
        with tracer.span("execute", cat="stream"):
            pass
        profile = tracer.profile(since=mark)
        assert "execute" in profile["stages"]
        assert "plan" not in profile["stages"]
        # the full-trace profile still sees both
        assert set(tracer.profile()["stages"]) == {"plan", "execute"}

    def test_worker_spans_clamped_into_dispatch_window(self):
        tracer = Tracer()
        with tracer.span("dispatch", cat="exec") as span:
            pass
        lo, hi = span.start, span.start + span.seconds
        # start before the window, duration beyond it: both clamp
        tracer.add_worker_spans(
            "shard", [(7, lo - 100.0, 1e9, 42)], lo=lo, hi=hi
        )
        event = tracer._events[-1]
        assert event["start"] >= lo
        assert event["start"] + event["dur"] <= hi
        assert event["tid"] == 42
        assert event["args"] == {"shard_id": 7}

    def test_chrome_trace_validates_and_carries_counters(self, tmp_path):
        tracer = Tracer()
        with tracer.span("clean", cat="clean", root=True):
            with tracer.span("plan", cat="stream"):
                pass
        tracer.add_counter("snapshot_bytes", 123)
        path = tmp_path / "t.json"
        tracer.write(path)
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        events = obj["traceEvents"]
        root = next(e for e in events if e.get("name") == "clean")
        assert root["args"]["counters"] == {"snapshot_bytes": 123.0}
        assert any(e["ph"] == "C" for e in events)
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert {"bclean", "driver"} <= names

    def test_validator_flags_overlap(self):
        bad = {
            "traceEvents": [
                {"ph": "X", "name": "a", "pid": 1, "tid": 1, "ts": 0, "dur": 10},
                {"ph": "X", "name": "b", "pid": 1, "tid": 1, "ts": 5, "dur": 10},
            ]
        }
        assert validate_chrome_trace(bad)

    def test_stopwatch_reports_counter(self):
        tracer = Tracer()
        with Stopwatch(tracer, "clean_seconds") as timer:
            pass
        assert timer.seconds >= 0.0
        assert tracer.counters["clean_seconds"] == pytest.approx(timer.seconds)
        with Stopwatch() as untraced:  # counterless form stays silent
            pass
        assert untraced.seconds >= 0.0


# -- disabled mode: the wire format must not move ------------------------------


class _EchoState:
    """Minimal picklable stand-in for the session-static snapshot."""

    def run_shard(self, shard, payload):
        return (shard.shard_id, payload["x"])


class _InProcessPool:
    """ProcessPoolExecutor stand-in that runs the real worker entry
    point in-process and keeps the exact pickled task stream."""

    def __init__(self, max_workers=None, initializer=None, initargs=()):
        self.pickles = []
        if initializer is not None:
            initializer(*initargs)

    def map(self, fn, tasks):
        tasks = list(tasks)
        self.pickles.append(
            pickle.dumps(tasks, protocol=pickle.HIGHEST_PROTOCOL)
        )
        return [fn(t) for t in tasks]

    def shutdown(self, wait=True):
        pass


@pytest.fixture
def inproc_pools(monkeypatch):
    created = []

    def factory(max_workers=None, initializer=None, initargs=()):
        pool = _InProcessPool(max_workers, initializer, initargs)
        created.append(pool)
        return pool

    monkeypatch.setattr(backends_mod, "ProcessPoolExecutor", factory)
    yield created
    backends_mod._worker_teardown()


def _shards(n=3):
    return [Shard(i, 0, "attr", np.array([i]), 1.0) for i in range(n)]


class TestDisabledWireFormat:
    def test_default_tracer_is_the_shared_singleton(self):
        assert SerialBackend().tracer is NULL_TRACER
        assert ThreadBackend(2).tracer is NULL_TRACER
        assert ProcessBackend(2).tracer is NULL_TRACER

    def test_untraced_tasks_byte_identical_to_pre_tracing_pickles(
        self, inproc_pools
    ):
        shards = _shards()
        payload = {"x": 7}
        backend = ProcessBackend(2, use_shm=False)  # pre-PR construction
        backend.open(_EchoState())
        results = backend.dispatch(payload, shards)
        assert results == [(0, 7), (1, 7), (2, 7)]
        tasks = pickle.loads(inproc_pools[0].pickles[0])
        assert all(len(task) == 3 for task in tasks)
        # the exact bytes a pre-tracing build would have shipped
        ship = ("blob", pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        expected = [(1, ship, shard) for shard in shards]
        assert inproc_pools[0].pickles[0] == pickle.dumps(
            expected, protocol=pickle.HIGHEST_PROTOCOL
        )
        assert backend.shard_times == []
        backend.close()

    def test_traced_tasks_add_only_the_timing_flag(self, inproc_pools):
        shards = _shards()
        payload = {"x": 7}
        tracer = Tracer()
        backend = ProcessBackend(2, use_shm=False, tracer=tracer)
        backend.open(_EchoState())
        results = backend.dispatch(payload, shards)
        assert results == [(0, 7), (1, 7), (2, 7)]  # bare results either way
        tasks = pickle.loads(inproc_pools[0].pickles[0])
        assert all(len(task) == 4 and task[3] is True for task in tasks)
        assert [t[0] for t in tasks] == [1, 1, 1]
        assert len(backend.shard_times) == len(shards)
        for (shard_id, start, dur, worker), shard in zip(
            backend.shard_times, shards
        ):
            assert shard_id == shard.shard_id
            assert dur >= 0.0
            assert worker == os.getpid()
        backend.close()

    def test_untraced_clean_has_no_profile_key(self, reference):
        assert "profile" not in reference.diagnostics


# -- traced runs: identical repairs, valid traces ------------------------------


class TestTracedEquivalence:
    @pytest.mark.parametrize("executor", ("serial", "thread", "process"))
    def test_traced_repairs_byte_identical(
        self, engine, reference, tmp_path, executor
    ):
        path = tmp_path / f"{executor}.json"
        result = _traced_clean(engine, path, chunk_rows=25, executor=executor)
        assert _sig(result) == _sig(reference)
        assert validate_chrome_trace(json.loads(path.read_text())) == []
        profile = result.diagnostics["profile"]
        assert set(profile["stages"]) == set(STAGES)

    def test_profile_stages_sum_close_to_wall_clock(self, engine, tmp_path):
        result = _traced_clean(engine, tmp_path / "p.json", chunk_rows=25)
        profile = result.diagnostics["profile"]
        stage_sum = sum(profile["stages"].values())
        wall = result.stats.clean_seconds
        assert stage_sum <= wall
        assert stage_sum >= 0.9 * wall

    def test_trace_has_all_stage_spans_per_chunk_and_shard_spans(
        self, engine, tmp_path
    ):
        path = tmp_path / "chunks.json"
        result = _traced_clean(engine, path, chunk_rows=25, executor="process")
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []
        n_chunks = result.diagnostics["stream"]["n_chunks"]
        stage_counts: dict[str, int] = {}
        shard_spans = 0
        for event in obj["traceEvents"]:
            if event.get("ph") != "X":
                continue
            if event.get("cat") == "stream":
                stage_counts[event["name"]] = (
                    stage_counts.get(event["name"], 0) + 1
                )
            if event["name"] == "shard":
                shard_spans += 1
        for stage in STAGES:
            # ingest runs once more: the pull that observes end-of-stream
            expected = n_chunks + 1 if stage == "ingest" else n_chunks
            assert stage_counts.get(stage) == expected, stage
        assert shard_spans >= result.diagnostics["exec"]["n_shards"]
        shards = result.diagnostics["profile"].get("shards")
        assert shards is not None and shards["n"] == shard_spans

    def test_every_stage_nests_inside_the_root_span(self, engine, tmp_path):
        path = tmp_path / "nest.json"
        _traced_clean(engine, path, chunk_rows=25)
        events = json.loads(path.read_text())["traceEvents"]
        root = next(
            e for e in events if e.get("ph") == "X" and e["name"] == "clean"
        )
        lo, hi = root["ts"], root["ts"] + root["dur"]
        eps = 0.011  # export rounds to 3 decimal µs
        for event in events:
            if event.get("ph") != "X" or event is root:
                continue
            assert event["dur"] >= 0.0
            if event.get("cat") in ("stream", "exec", "session"):
                assert event["ts"] >= lo - eps
                assert event["ts"] + event["dur"] <= hi + eps

    def test_fit_spans_and_mmhc_counters(self, hospital):
        config = BCleanConfig.pi(structure="mmhc", profile=True)
        eng = BClean(config, hospital.constraints)
        eng.fit(hospital.dirty)
        tracer = eng._obs
        assert tracer.enabled
        names = {event["name"] for event in tracer._events}
        assert {"fit", "fit.structure", "mmhc.mmpc", "mmhc.hillclimb"} <= names
        assert tracer.counters["mmhc_independence_tests"] > 0
        assert "fit_seconds" in tracer.counters
        result = eng.clean()
        assert "profile" in result.diagnostics


# -- CI smoke: traced chunked stream end to end --------------------------------


def test_traced_stream_smoke(hospital, tmp_path):
    """Chunked traced clean; writes the trace to $TRACE_OUT when set so
    CI can validate and archive it."""
    out = os.environ.get("TRACE_OUT")
    path = Path(out) if out else tmp_path / "stream-trace.json"
    config = BCleanConfig.pip(chunk_rows=16, executor="process", n_jobs=2)
    eng = BClean(config, hospital.constraints)
    eng.fit(hospital.dirty)
    result = eng.clean(trace=str(path))
    obj = json.loads(path.read_text())
    assert validate_chrome_trace(obj) == []
    stream_spans = {
        e["name"]
        for e in obj["traceEvents"]
        if e.get("ph") == "X" and e.get("cat") == "stream"
    }
    assert stream_spans == set(STAGES)
    assert "profile" in result.diagnostics
    assert result.diagnostics["stream"]["n_chunks"] == 4
