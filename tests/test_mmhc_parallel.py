"""Parallel MMHC structure search: bit-identity across backends.

The MMPC skeleton scans and the hill-climb's family-score evaluations
dispatch as task batches over the session-scoped exec backends; the
search loops stay driver-side.  So DAG, final score, and both phase
counters must be **bit-identical** across serial / thread / process at
any worker count — the backends only change wall-clock — and the
parallel dispatches must show up as ``mmhc.parallel`` spans in a trace
that validates against the event schema.
"""

import json
import random

import numpy as np
import pytest

from repro.bayesnet.structure.mmhc import mmhc
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.errors import ErrorInjector
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.exec import ExecSession, build_fit_state
from repro.exec.fit_stream import suffstats_from_table
from repro.obs import Tracer, validate_chrome_trace

pytestmark = pytest.mark.fast


def build_table(seed: int = 0, n_rows: int = 150) -> Table:
    """Four attributes with two planted FDs (key→value, code→site) so
    MMPC has real skeleton structure to find."""
    rng = random.Random(seed)
    schema = Schema.of(
        "key:categorical",
        "value:categorical",
        "code:categorical",
        "site:categorical",
    )
    fd1 = {f"k{i}": f"v{i}" for i in range(5)}
    fd2 = {f"c{i}": f"s{i}" for i in range(4)}
    rows = []
    for _ in range(n_rows):
        k = rng.choice(list(fd1))
        c = rng.choice(list(fd2))
        rows.append([k, fd1[k], c, fd2[c]])
    clean = Table.from_rows(schema, rows)
    return ErrorInjector(rate=0.1, seed=seed + 1).inject(clean).dirty


def serial_result(table, encoding=None, **kwargs):
    return mmhc(table, encoding=encoding or table.encode(), **kwargs)


def parallel_result(table, executor, n_jobs=2, tracer=None, **kwargs):
    encoding = table.encode()
    state = build_fit_state(
        encoding, table.schema.names, np.ones(table.n_rows)
    )
    session = (
        ExecSession(state, n_jobs, tracer=tracer)
        if tracer is not None
        else ExecSession(state, n_jobs)
    )
    try:
        return mmhc(
            table,
            encoding=encoding,
            exec_session=session,
            executor=executor,
            n_jobs=n_jobs,
            tracer=tracer or session.tracer,
            **kwargs,
        )
    finally:
        session.close()


class TestParallelIdentity:
    @pytest.fixture(scope="class")
    def table(self):
        return build_table()

    @pytest.fixture(scope="class")
    def reference(self, table):
        return serial_result(table)

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_dag_score_and_counters_bit_identical(
        self, table, reference, executor
    ):
        result = parallel_result(table, executor)
        assert sorted(result.dag.edges()) == sorted(reference.dag.edges())
        assert result.score == reference.score
        assert result.cpc == reference.cpc
        assert (
            result.n_independence_tests == reference.n_independence_tests
        )
        assert result.n_moves_evaluated == reference.n_moves_evaluated

    def test_weighted_stream_parallel_identity(self, table, reference):
        """The deduplicated-stream form rides the same task batches:
        struct rows + multiplicities, serial vs thread, both equal to
        the full-table serial search."""
        stats = suffstats_from_table(table, chunk_rows=31)
        struct, senc, row_counts, row_firsts = stats.finalize()
        weighted = dict(
            row_counts=row_counts,
            row_firsts=row_firsts,
            n_rows=stats.n_rows,
        )
        serial = mmhc(struct, encoding=senc, **weighted)
        state = build_fit_state(
            senc,
            struct.schema.names,
            np.ones(struct.n_rows),
            row_counts=row_counts,
            row_firsts=row_firsts,
            n_rows=stats.n_rows,
        )
        session = ExecSession(state, 2)
        try:
            threaded = mmhc(
                struct,
                encoding=senc,
                exec_session=session,
                executor="thread",
                n_jobs=2,
                **weighted,
            )
        finally:
            session.close()
        for result in (serial, threaded):
            assert sorted(result.dag.edges()) == sorted(
                reference.dag.edges()
            )
            assert result.score == reference.score
            assert (
                result.n_independence_tests
                == reference.n_independence_tests
            )


class TestEngineLevelParallelFit:
    @pytest.fixture(scope="class")
    def dirty(self):
        return build_table(seed=7)

    def run(self, dirty, **knobs):
        engine = BClean(BCleanConfig.pi(structure="mmhc", **knobs))
        engine.fit(dirty, chunk_rows=40)
        return engine, engine.clean()

    def test_backends_learn_identical_networks(self, dirty):
        base_engine, base = self.run(dirty)
        for executor in ("thread", "process"):
            engine, result = self.run(
                dirty, fit_executor=executor, n_jobs=2
            )
            assert sorted(engine.dag.edges()) == sorted(
                base_engine.dag.edges()
            )
            assert [
                (r.row, r.attribute, r.old_value, r.new_value)
                for r in result.repairs
            ] == [
                (r.row, r.attribute, r.old_value, r.new_value)
                for r in base.repairs
            ]
            assert engine._fit_diag["fit_executor"] == executor

    def test_single_worker_records_serial_reason(self, dirty):
        """A degenerate parallel request must say *why* it ran serially
        — the provenance the fit bench asserts on."""
        engine, _ = self.run(dirty, fit_executor="thread", n_jobs=1)
        diag = engine._fit_diag
        assert diag.get("ran_serially") is True
        assert diag.get("ran_serially_reason") == "n_jobs=1"


class TestHashSeedDeterminism:
    def test_edge_order_independent_of_hash_seed(self):
        """The hill-climb's move enumeration must not ride set hash
        order: two processes with different PYTHONHASHSEED must emit
        the same edges in the same *insertion order* (parent order
        feeds float summation order in every downstream score)."""
        import os
        import subprocess
        import sys

        script = (
            "import json, random\n"
            "from repro.bayesnet.structure.mmhc import mmhc\n"
            "from repro.dataset.schema import Schema\n"
            "from repro.dataset.table import Table\n"
            "rng = random.Random(0)\n"
            "schema = Schema.of('key:categorical', 'value:categorical',"
            " 'code:categorical', 'site:categorical')\n"
            "fd1 = {f'k{i}': f'v{i}' for i in range(5)}\n"
            "fd2 = {f'c{i}': f's{i}' for i in range(4)}\n"
            "rows = []\n"
            "for _ in range(150):\n"
            "    k = rng.choice(list(fd1)); c = rng.choice(list(fd2))\n"
            "    rows.append([k, fd1[k], c, fd2[c]])\n"
            "table = Table.from_rows(schema, rows)\n"
            "r = mmhc(table, encoding=table.encode())\n"
            "print(json.dumps({'edges': [list(e) for e in r.dag.edges()],"
            " 'score': r.score}))\n"
        )
        outputs = []
        for seed in ("0", "42"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src" + (
                os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
            )
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(__file__)),
            )
            assert proc.returncode == 0, proc.stderr
            outputs.append(json.loads(proc.stdout))
        assert outputs[0] == outputs[1]
        assert outputs[0]["edges"], "expected the FDs to surface as edges"


class TestParallelSpans:
    def test_mmhc_parallel_spans_validate(self, tmp_path):
        table = build_table(seed=3)
        tracer = Tracer()
        with tracer.span("fit", cat="fit", root=True):
            parallel_result(table, "thread", tracer=tracer)
        path = tmp_path / "mmhc-trace.json"
        tracer.write(path)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        spans = [
            e for e in payload["traceEvents"]
            if e.get("name") == "mmhc.parallel"
        ]
        phases = {e["args"]["phase"] for e in spans}
        assert "mmpc" in phases and "scores" in phases
        assert all(e["args"]["backend"] == "thread" for e in spans)
        assert {"mmhc.mmpc", "mmhc.hillclimb"} <= {
            e.get("name") for e in payload["traceEvents"]
        }
