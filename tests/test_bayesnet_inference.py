"""Tests for repro.bayesnet.inference (factors + variable elimination)."""

import pytest

from repro.bayesnet.cpt import NULL_KEY
from repro.bayesnet.dag import DAG
from repro.bayesnet.inference import (
    Factor,
    VariableElimination,
    log_sum_exp,
    markov_blanket_posterior,
)
from repro.bayesnet.model import DiscreteBayesNet
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import InferenceError


@pytest.fixture
def sprinkler_bn() -> DiscreteBayesNet:
    """The classic rain → sprinkler → wet-grass network, fitted from a
    table whose empirical distribution encodes the dependencies."""
    schema = Schema.of("rain:categorical", "sprinkler:categorical", "wet:categorical")
    rows = []
    # rain yes -> wet yes; sprinkler on -> wet yes; both off -> dry.
    rows += [["yes", "off", "yes"]] * 30
    rows += [["no", "on", "yes"]] * 25
    rows += [["no", "off", "no"]] * 40
    rows += [["yes", "on", "yes"]] * 5
    table = Table.from_rows(schema, rows)
    dag = DAG(schema.names)
    dag.add_edge("rain", "wet")
    dag.add_edge("sprinkler", "wet")
    return DiscreteBayesNet.fit(table, dag, alpha=0.1)


class TestFactor:
    def test_from_cpt_shape(self, sprinkler_bn):
        f = Factor.from_cpt(sprinkler_bn, "wet")
        assert set(f.variables) == {"rain", "sprinkler", "wet"}
        assert len(f) == 2 * 2 * 2

    def test_reduce_drops_variable(self, sprinkler_bn):
        f = Factor.from_cpt(sprinkler_bn, "wet").reduce({"rain": "yes"})
        assert "rain" not in f.variables
        assert len(f) == 4

    def test_multiply_joins_on_shared(self, sprinkler_bn):
        fw = Factor.from_cpt(sprinkler_bn, "wet")
        fr = Factor.from_cpt(sprinkler_bn, "rain")
        product = fw.multiply(fr)
        assert set(product.variables) == {"rain", "sprinkler", "wet"}
        assert len(product) == 8

    def test_marginalize_sums(self):
        f = Factor(("a", "b"), {("x", "p"): 0.3, ("x", "q"): 0.2, ("y", "p"): 0.5})
        m = f.marginalize("b")
        assert m.table[("x",)] == pytest.approx(0.5)
        assert m.table[("y",)] == pytest.approx(0.5)

    def test_marginalize_unknown_rejected(self):
        f = Factor(("a",), {("x",): 1.0})
        with pytest.raises(InferenceError):
            f.marginalize("zzz")

    def test_normalize(self):
        f = Factor(("a",), {("x",): 2.0, ("y",): 2.0}).normalize()
        assert f.table[("x",)] == pytest.approx(0.5)

    def test_normalize_zero_rejected(self):
        f = Factor(("a",), {})
        with pytest.raises(InferenceError):
            f.normalize()


class TestVariableElimination:
    def test_full_evidence_matches_blanket(self, sprinkler_bn):
        ve = VariableElimination(sprinkler_bn)
        evidence = {"rain": "yes", "sprinkler": "off"}
        posterior_ve = ve.query("wet", evidence)
        posterior_mb = markov_blanket_posterior(
            sprinkler_bn, "wet", {**evidence, "wet": "yes"}
        )
        for value in posterior_ve:
            assert posterior_ve[value] == pytest.approx(
                posterior_mb[value], abs=1e-9
            )

    def test_partial_evidence_marginalises(self, sprinkler_bn):
        ve = VariableElimination(sprinkler_bn)
        # No sprinkler observation: must sum it out, not crash.
        posterior = ve.query("wet", {"rain": "yes"})
        assert posterior["yes"] > posterior["no"]
        assert sum(posterior.values()) == pytest.approx(1.0)

    def test_no_evidence_prior(self, sprinkler_bn):
        ve = VariableElimination(sprinkler_bn)
        prior = ve.query("rain")
        assert prior["no"] > prior["yes"]  # 65 vs 35 in the data

    def test_map_value(self, sprinkler_bn):
        ve = VariableElimination(sprinkler_bn)
        assert ve.map_value("wet", {"rain": "yes", "sprinkler": "on"}) == "yes"

    def test_target_in_evidence_rejected(self, sprinkler_bn):
        ve = VariableElimination(sprinkler_bn)
        with pytest.raises(InferenceError):
            ve.query("wet", {"wet": "yes"})

    def test_unknown_target_rejected(self, sprinkler_bn):
        ve = VariableElimination(sprinkler_bn)
        with pytest.raises(InferenceError):
            ve.query("nope")

    def test_null_as_evidence_value(self, sprinkler_bn):
        ve = VariableElimination(sprinkler_bn)
        # NULL evidence is a legal (if unseen) symbol: must not crash.
        posterior = ve.query("wet", {"rain": None, "sprinkler": "on"})
        assert sum(posterior.values()) == pytest.approx(1.0)


class TestLogSumExp:
    def test_matches_direct_computation(self):
        import math

        values = [-1.0, -2.0, -3.0]
        direct = math.log(sum(math.exp(v) for v in values))
        assert log_sum_exp(values) == pytest.approx(direct)

    def test_handles_large_magnitudes(self):
        assert log_sum_exp([-1000.0, -1000.0]) == pytest.approx(
            -1000.0 + 0.6931, abs=1e-3
        )

    def test_empty_rejected(self):
        with pytest.raises(InferenceError):
            log_sum_exp([])
