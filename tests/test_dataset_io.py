"""Tests for repro.dataset.io (CSV round-tripping)."""

import pytest

from repro.dataset.io import read_csv, read_csv_text, to_csv_text, write_csv
from repro.dataset.schema import AttrType, Schema
from repro.dataset.table import Table
from repro.errors import CSVFormatError


class TestReadCsvText:
    def test_basic(self):
        t = read_csv_text("a,b\n1,x\n2,y\n")
        assert t.n_rows == 2
        assert t.schema.type_of("a") == AttrType.INTEGER
        assert t.cell(0, "a") == 1

    def test_nulls_parsed(self):
        t = read_csv_text("a,b\n,x\nNULL,y\n")
        assert t.cell(0, "a") is None
        assert t.cell(1, "a") is None

    def test_empty_file_rejected(self):
        with pytest.raises(CSVFormatError):
            read_csv_text("")

    def test_ragged_row_rejected(self):
        with pytest.raises(CSVFormatError):
            read_csv_text("a,b\n1\n")

    def test_explicit_schema_mismatch_rejected(self):
        with pytest.raises(CSVFormatError):
            read_csv_text("a,b\n1,2\n", schema=Schema.of("x", "y"))

    def test_explicit_schema_coerces(self):
        s = Schema.of("a:float", "b")
        t = read_csv_text("a,b\n1,x\n", schema=s)
        assert t.cell(0, "a") == 1.0

    def test_quoted_fields(self):
        t = read_csv_text('a,b\n"hello, world",x\n')
        assert t.cell(0, "a") == "hello, world"

    def test_blank_lines_skipped(self):
        t = read_csv_text("a,b\n1,x\n\n2,y\n")
        assert t.n_rows == 2


class TestRoundTrip:
    def test_text_round_trip(self, customer_table):
        text = to_csv_text(customer_table)
        back = read_csv_text(text, schema=customer_table.schema)
        assert back == customer_table

    def test_null_round_trip(self, customer_table):
        customer_table.set_cell(0, "City", None)
        text = to_csv_text(customer_table)
        back = read_csv_text(text, schema=customer_table.schema)
        assert back.cell(0, "City") is None

    def test_file_round_trip(self, tmp_path, customer_table):
        path = tmp_path / "t.csv"
        write_csv(customer_table, path)
        back = read_csv(path, schema=customer_table.schema)
        assert back == customer_table

    def test_numeric_round_trip(self, tmp_path):
        s = Schema.of("n:integer", "f:float")
        t = Table.from_rows(s, [[1, 1.5], [2, 2.25]])
        path = tmp_path / "n.csv"
        write_csv(t, path)
        back = read_csv(path, schema=s)
        assert back.cell(1, "f") == 2.25


class TestCSVRoundTripProperty:
    """Property: any table of printable values survives a CSV round trip."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    # NULL spellings are excluded: is_null() canonicalises "null"/"nan"/
    # "none" (and blanks) to None by design, so those strings are not
    # representable as non-null cells — a documented boundary, not a bug.
    tricky_text = st.text(
        alphabet=st.characters(
            whitelist_categories=("L", "N", "P", "Zs"),
            whitelist_characters=',;"\'\n\t',
        ),
        min_size=1,
        max_size=12,
    ).filter(
        lambda s: s.strip() == s
        and s != ""
        and s.lower() not in ("null", "nan", "none")
    )

    @given(
        rows=st.lists(
            st.tuples(tricky_text, tricky_text), min_size=1, max_size=12
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_arbitrary_text_round_trip(self, rows):
        from repro.dataset.io import read_csv_text, to_csv_text
        from repro.dataset.schema import Schema
        from repro.dataset.table import Table

        schema = Schema.of("a:text", "b:text")
        table = Table.from_rows(schema, [list(r) for r in rows])
        rebuilt = read_csv_text(to_csv_text(table), schema=schema)
        assert rebuilt == table
