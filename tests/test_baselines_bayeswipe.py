"""Tests for the BayesWipe-style baseline."""

import pytest

from repro.baselines.bayeswipe import BayesWipeCleaner, bayeswipe_clean
from repro.data.benchmark import load_benchmark
from repro.errors import BaselineError
from repro.evaluation.metrics import evaluate_repairs


class TestBayesWipe:
    def test_clean_before_fit(self):
        with pytest.raises(BaselineError):
            BayesWipeCleaner().clean()

    def test_repairs_typo_via_channel(self, dirty_customer_table):
        cleaned = bayeswipe_clean(dirty_customer_table)
        assert cleaned.cell(3, "City") == "centre"

    def test_deterministic(self, dirty_customer_table):
        assert bayeswipe_clean(dirty_customer_table) == bayeswipe_clean(
            dirty_customer_table
        )

    def test_meaningful_on_hospital(self):
        bench = load_benchmark("hospital", n_rows=250, seed=0)
        cleaned = bayeswipe_clean(bench.dirty)
        q = evaluate_repairs(
            bench.dirty, cleaned, bench.clean, bench.error_cells
        )
        # A competent Bayesian cleaner, even without compensatory
        # scoring or UCs (the +2% gap the paper claims over it).
        assert q.f1 > 0.3

    def test_bclean_beats_bayeswipe_on_hospital(self):
        from repro.evaluation.runner import run_system
        from repro.evaluation.systems import BCleanSystem

        bench = load_benchmark("hospital", n_rows=250, seed=0)
        bclean = run_system(BCleanSystem.pi(), bench, catch_errors=False)
        cleaned = bayeswipe_clean(bench.dirty)
        bw = evaluate_repairs(
            bench.dirty, cleaned, bench.clean, bench.error_cells
        )
        # the paper's ordering: BClean ≥ other Bayesian methods
        assert bclean.quality.f1 >= bw.f1 - 0.05
