"""Tests for sampling-based approximate inference."""

import pytest

from repro.bayesnet.dag import DAG
from repro.bayesnet.inference import VariableElimination
from repro.bayesnet.model import DiscreteBayesNet
from repro.bayesnet.sampling import GibbsSampler, forward_sample
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import InferenceError


@pytest.fixture
def chain_bn() -> DiscreteBayesNet:
    """x → y with a strong deterministic-ish coupling."""
    schema = Schema.of("x:categorical", "y:categorical")
    rows = [["a", "p"]] * 45 + [["b", "q"]] * 45 + [["a", "q"]] * 5 + [["b", "p"]] * 5
    table = Table.from_rows(schema, rows)
    dag = DAG(schema.names)
    dag.add_edge("x", "y")
    return DiscreteBayesNet.fit(table, dag, alpha=0.2)


class TestForwardSample:
    def test_sample_count_and_keys(self, chain_bn):
        samples = forward_sample(chain_bn, 50, seed=1)
        assert len(samples) == 50
        assert all(set(s) == {"x", "y"} for s in samples)

    def test_respects_coupling(self, chain_bn):
        samples = forward_sample(chain_bn, 500, seed=2)
        agree = sum(
            1
            for s in samples
            if (s["x"], s["y"]) in (("a", "p"), ("b", "q"))
        )
        assert agree / len(samples) > 0.75

    def test_deterministic_per_seed(self, chain_bn):
        assert forward_sample(chain_bn, 20, seed=3) == forward_sample(
            chain_bn, 20, seed=3
        )

    def test_invalid_count(self, chain_bn):
        with pytest.raises(InferenceError):
            forward_sample(chain_bn, 0)


class TestGibbs:
    def test_agrees_with_variable_elimination(self, chain_bn):
        exact = VariableElimination(chain_bn).query("x", {"y": "p"})
        approx = GibbsSampler(chain_bn, seed=4).query(
            "x", {"y": "p"}, n_samples=4000, burn_in=300
        )
        for value, p in exact.items():
            assert approx.get(value, 0.0) == pytest.approx(p, abs=0.06)

    def test_map_value(self, chain_bn):
        assert GibbsSampler(chain_bn, seed=5).map_value("x", {"y": "q"}) == "b"

    def test_target_in_evidence_rejected(self, chain_bn):
        with pytest.raises(InferenceError):
            GibbsSampler(chain_bn).query("x", {"x": "a"})

    def test_unknown_target_rejected(self, chain_bn):
        with pytest.raises(InferenceError):
            GibbsSampler(chain_bn).query("nope")
