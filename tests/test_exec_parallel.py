"""The sharded execution subsystem must be invisible in the results.

Every combination of worker backend (serial / thread / process) and
shard granularity must produce a ``CleaningResult`` byte-identical to
the serial single-shard columnar path — same repairs, bit-equal scores,
same work counters — which itself is decision-identical to the scalar
oracle (covered by test_engine_columnar_equivalence).  On top of the
end-to-end matrix, the planner, merge, snapshot pickling, and the
incremental foreign-table encoding get unit coverage.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core.config import BCleanConfig, InferenceMode
from repro.core.engine import BClean
from repro.data.benchmark import load_benchmark
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import CleaningError, SchemaError
from repro.exec import (
    ChunkView,
    FitState,
    Shard,
    ShardResult,
    get_backend,
    merge_shard_results,
    plan_shards,
)

BACKENDS = ("serial", "thread", "process")
SHARD_SIZES = (1, 2, 7)


def _repair_bytes(result):
    """The full, exact repair signature (no tolerance — byte identity)."""
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


def _counter_sig(result):
    s = result.stats
    return (
        s.cells_total,
        s.cells_inspected,
        s.cells_skipped_pruning,
        s.candidates_evaluated,
        s.candidates_filtered_uc,
        s.repairs_made,
    )


@pytest.fixture(scope="module")
def hospital():
    return load_benchmark("hospital", n_rows=60, seed=0)


@pytest.fixture(scope="module")
def reference(hospital):
    """The serial columnar result every parallel run is pinned against."""
    engine = BClean(BCleanConfig.pi(), hospital.constraints)
    engine.fit(hospital.dirty)
    return engine.clean()


def _run(instance, mode=InferenceMode.PARTITIONED, **knobs):
    engine = BClean(
        BCleanConfig(mode=mode, **knobs), instance.constraints
    )
    engine.fit(instance.dirty)
    return engine.clean()


@pytest.mark.parametrize("executor", BACKENDS)
@pytest.mark.parametrize("shard_size", SHARD_SIZES)
def test_backend_shard_matrix_byte_identical(hospital, reference, executor, shard_size):
    result = _run(
        hospital, executor=executor, n_jobs=2, shard_size=shard_size
    )
    assert result.diagnostics["columnar"] is True
    assert result.diagnostics["exec"]["executor"] == executor
    assert _repair_bytes(result) == _repair_bytes(reference)
    assert _counter_sig(result) == _counter_sig(reference)
    assert result.cleaned == reference.cleaned


@pytest.mark.parametrize("executor", ("thread", "process"))
def test_cost_balanced_planning_byte_identical(hospital, reference, executor):
    """Default (cost-balanced, no shard_size) planning with parallel
    backends must not change a single byte either."""
    result = _run(hospital, executor=executor, n_jobs=3)
    assert result.diagnostics["exec"]["n_shards"] >= 1
    assert _repair_bytes(result) == _repair_bytes(reference)


@pytest.mark.parametrize(
    "mode", (InferenceMode.BASIC, InferenceMode.PARTITIONED_PRUNED),
    ids=["basic", "pip"],
)
def test_process_backend_other_modes(hospital, mode):
    serial = _run(hospital, mode=mode)
    parallel = _run(hospital, mode=mode, executor="process", n_jobs=2, shard_size=7)
    assert _repair_bytes(parallel) == _repair_bytes(serial)
    assert _counter_sig(parallel) == _counter_sig(serial)


# -- foreign tables (incremental encoding) -------------------------------------


@pytest.fixture(scope="module")
def foreign_pair(hospital):
    """A foreign table with unseen values (plain, NULL, and null-like)."""
    foreign = hospital.dirty.copy()
    names = foreign.schema.names
    foreign.set_cell(3, names[1], "UNSEEN-VALUE-A")
    foreign.set_cell(9, names[1], "UNSEEN-VALUE-B")
    foreign.set_cell(5, names[2], None)
    foreign.set_cell(7, names[0], "null")
    return foreign


@pytest.mark.parametrize("executor", BACKENDS)
def test_foreign_table_backends_match_scalar(hospital, foreign_pair, executor):
    engine = BClean(
        BCleanConfig.pi(executor=executor, n_jobs=2, shard_size=5),
        hospital.constraints,
    )
    engine.fit(hospital.dirty)
    result = engine.clean(foreign_pair)
    assert result.diagnostics["columnar"] is True
    assert result.diagnostics["exec"]["incremental_encoding"] is True

    oracle_engine = BClean(
        BCleanConfig.pi(use_columnar=False), hospital.constraints
    )
    oracle_engine.fit(hospital.dirty)
    oracle = oracle_engine.clean(foreign_pair)
    assert [
        (r.row, r.attribute, r.old_value, r.new_value) for r in result.repairs
    ] == [
        (r.row, r.attribute, r.old_value, r.new_value) for r in oracle.repairs
    ]
    for got, want in zip(result.repairs, oracle.repairs):
        assert got.old_score == pytest.approx(want.old_score, abs=1e-9)
        assert got.new_score == pytest.approx(want.new_score, abs=1e-9)
    assert _counter_sig(result) == _counter_sig(oracle)


def test_foreign_encoding_is_idempotent(hospital, foreign_pair):
    engine = BClean(BCleanConfig.pi(), hospital.constraints)
    engine.fit(hospital.dirty)
    first = engine._encoding.encode_table(foreign_pair)
    again = engine._encoding.encode_table(foreign_pair)
    assert np.array_equal(first, again)
    # Unseen values got codes beyond the fitted horizon, distinct per value.
    names = foreign_pair.schema.names
    col = first[:, 1]
    assert col[3] != col[9]
    # Seen cells keep their fitted codes.
    fitted_codes = engine._encoding.codes(names[0])
    assert first[0, 0] == fitted_codes[0]
    # Repeated cleans of the same foreign table stay identical.
    one = engine.clean(foreign_pair)
    two = engine.clean(foreign_pair)
    assert _repair_bytes(one) == _repair_bytes(two)


def test_foreign_encoding_null_like_flags(hospital, foreign_pair):
    engine = BClean(BCleanConfig.pi(), hospital.constraints)
    engine.fit(hospital.dirty)
    codes = engine._encoding.encode_table(foreign_pair)
    names = foreign_pair.schema.names
    null_mask = engine._encoding.vocab(names[0]).null_mask
    assert bool(null_mask[codes[7, 0]]) is True  # literal "null" string
    zip_mask = engine._encoding.vocab(names[2]).null_mask
    assert bool(zip_mask[codes[5, 2]]) is True  # real NULL


def test_foreign_encoding_rejects_schema_mismatch(hospital):
    engine = BClean(BCleanConfig.pi(), hospital.constraints)
    engine.fit(hospital.dirty)
    other = Table.from_rows(Schema.of("a:text", "b:text"), [["x", "y"]])
    with pytest.raises(SchemaError):
        engine._encoding.encode_table(other)
    # The engine routes such a table to the scalar path.
    assert engine._columnar_applicable(other) is False


def test_value_queries_survive_vocabulary_extension(hospital, foreign_pair):
    """After a foreign clean mints extended codes, value-level queries
    with those values (scalar fallback paths) must count 0, not crash
    (regression: IndexError in CooccurrenceIndex.count)."""
    instance = load_benchmark("hospital", n_rows=60, seed=0)
    engine = BClean(BCleanConfig.pip(), instance.constraints)
    engine.fit(instance.dirty)
    foreign = instance.dirty.copy()
    names = foreign.schema.names
    foreign.set_cell(3, names[1], "UNSEEN-VALUE-A")
    engine.clean(foreign)
    assert engine.cooc.count(names[1], "UNSEEN-VALUE-A") == 0
    # Mutate the fitted table to contain the now-interned value: the
    # scalar fallback (PIP tuple filter probes count()) must not crash.
    instance.dirty.set_cell(0, names[1], "UNSEEN-VALUE-A")
    result = engine.clean()
    assert result.diagnostics["columnar"] is False


@pytest.mark.parametrize("executor", BACKENDS)
def test_mutated_fitted_table_still_falls_back(hospital, executor):
    """A fitted table mutated after fit() fails the snapshot check and
    must take the scalar path under every backend."""
    instance = load_benchmark("hospital", n_rows=50, seed=0)
    engine = BClean(
        BCleanConfig.pi(executor=executor, n_jobs=2), instance.constraints
    )
    engine.fit(instance.dirty)
    instance.dirty.set_cell(0, instance.dirty.schema.names[0], "mutant")
    result = engine.clean()
    assert result.diagnostics["columnar"] is False


# -- snapshot pickling ---------------------------------------------------------


def test_fit_state_pickle_round_trip(hospital):
    """A pickled-and-restored FitState must reproduce every shard result
    exactly (the process backend's correctness contract).  The view is
    deliberately *not* re-pickled: per-chunk payloads are what the
    persistent session ships per dispatch, the snapshot only once."""
    engine = BClean(BCleanConfig.pi(), hospital.constraints)
    engine.fit(hospital.dirty)
    enc = engine._encoding
    names = hospital.dirty.schema.names
    codes = enc.matrix()
    uniq_rows, first = np.unique(codes, axis=0, return_index=True)[:2]
    state = FitState(
        engine.config,
        enc,
        engine.cooc,
        engine.comp,
        engine.pruner,
        engine._columnar_scorer(),
        engine.subnets,
        names,
        {a: engine._domain_codes(a) for a in names},
    )
    view = ChunkView(
        uniq_rows,
        engine.cooc.row_weights[first],
        {a: enc.vocab(a).null_mask for a in names},
        {a: engine._uc_code_mask(a) for a in names},
    )
    shard = Shard(0, 1, names[1], np.arange(min(9, len(uniq_rows))))
    direct = state.run_shard(shard, view)
    restored = pickle.loads(pickle.dumps(state))
    rerun = restored.run_shard(shard, pickle.loads(pickle.dumps(view)))
    assert np.array_equal(direct.decided, rerun.decided)
    assert np.array_equal(direct.incumbent_scores, rerun.incumbent_scores)
    assert np.array_equal(direct.best_scores, rerun.best_scores)
    assert direct.candidates_evaluated == rerun.candidates_evaluated
    # The restored encoding dropped its source-table reference.
    assert restored.encoding._source is None


# -- planner -------------------------------------------------------------------


def _work(costs_by_col):
    return [
        (j, f"a{j}", np.arange(len(costs)), np.asarray(costs, dtype=np.float64))
        for j, costs in enumerate(costs_by_col)
    ]


class TestPlanner:
    def test_shard_size_honoured(self):
        plan = plan_shards(_work([[1.0] * 10]), n_shards_hint=4, shard_size=3)
        assert [len(s.uids) for s in plan.shards] == [3, 3, 3, 1]
        assert plan.n_competitions == 10

    def test_cost_balanced_cuts(self):
        # One expensive competition among cheap ones: the expensive one
        # should not drag a long cheap tail into its shard.
        costs = [100.0] + [1.0] * 99
        plan = plan_shards(_work([costs]), n_shards_hint=2)
        assert plan.n_shards >= 2
        assert plan.n_competitions == 100
        heaviest = max(plan.shards, key=lambda s: s.cost)
        assert len(heaviest.uids) < 100

    def test_deterministic(self):
        work = _work([[3.0, 1.0, 4.0, 1.0, 5.0], [9.0, 2.0, 6.0]])
        a = plan_shards(work, n_shards_hint=3)
        b = plan_shards(work, n_shards_hint=3)
        assert [s.uids.tolist() for s in a.shards] == [
            s.uids.tolist() for s in b.shards
        ]
        assert [s.shard_id for s in a.shards] == list(range(a.n_shards))

    def test_serial_hint_one_shard_per_attribute(self):
        plan = plan_shards(_work([[1.0] * 8, [1.0] * 8]), n_shards_hint=1)
        assert plan.n_shards == 2
        assert all(len(s.uids) == 8 for s in plan.shards)

    def test_empty_attribute_skipped(self):
        plan = plan_shards(_work([[], [1.0, 1.0]]), n_shards_hint=1)
        assert plan.n_shards == 1
        assert plan.shards[0].column == 1

    def test_covers_every_uid_exactly_once(self):
        costs = list(np.linspace(1, 50, 37))
        plan = plan_shards(_work([costs]), n_shards_hint=5)
        seen = np.concatenate([s.uids for s in plan.shards])
        assert sorted(seen.tolist()) == list(range(37))


# -- merge ---------------------------------------------------------------------


class TestMerge:
    def _result(self, shard_id, column, uids, decided):
        n = len(uids)
        return ShardResult(
            shard_id,
            column,
            np.asarray(uids),
            np.asarray(decided, dtype=np.int64),
            np.zeros(n),
            np.ones(n),
            candidates_evaluated=n,
            candidates_filtered_uc=0,
        )

    def test_scatter_and_counters(self):
        merged = merge_shard_results(
            [
                self._result(0, 0, [0, 2], [5, -1]),
                self._result(1, 0, [1], [7]),
            ],
            n_uniq=3,
            columns=[0],
        )
        assert merged.decided[0].tolist() == [5, 7, -1]
        assert merged.candidates_evaluated == 3
        assert merged.n_competitions == 3

    def test_overlap_rejected(self):
        with pytest.raises(CleaningError, match="overlaps"):
            merge_shard_results(
                [
                    self._result(0, 0, [0, 1], [1, 1]),
                    self._result(1, 0, [1], [2]),
                ],
                n_uniq=2,
                columns=[0],
            )

    def test_unplanned_column_rejected(self):
        with pytest.raises(CleaningError, match="unplanned"):
            merge_shard_results(
                [self._result(0, 3, [0], [1])], n_uniq=1, columns=[0]
            )


# -- backends ------------------------------------------------------------------


def test_get_backend_rejects_unknown():
    with pytest.raises(CleaningError, match="unknown executor"):
        get_backend("gpu", 2)


def test_config_validates_executor_knobs():
    with pytest.raises(CleaningError):
        BCleanConfig(executor="warp")
    with pytest.raises(CleaningError):
        BCleanConfig(n_jobs=0)
    with pytest.raises(CleaningError):
        BCleanConfig(shard_size=0)
