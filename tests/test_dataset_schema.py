"""Tests for repro.dataset.schema."""

import pytest

from repro.dataset.schema import Attribute, AttrType, Schema
from repro.errors import SchemaError


class TestAttrType:
    def test_numeric_flags(self):
        assert AttrType.INTEGER.is_numeric
        assert AttrType.FLOAT.is_numeric
        assert not AttrType.TEXT.is_numeric
        assert not AttrType.CATEGORICAL.is_numeric

    def test_textual_flags(self):
        assert AttrType.TEXT.is_textual
        assert AttrType.CATEGORICAL.is_textual
        assert not AttrType.INTEGER.is_textual


class TestAttribute:
    def test_defaults(self):
        a = Attribute("city")
        assert a.attr_type == AttrType.TEXT
        assert not a.nullable

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_frozen(self):
        a = Attribute("city")
        with pytest.raises(AttributeError):
            a.name = "other"  # type: ignore[misc]


class TestSchema:
    def test_of_parses_typed_specs(self):
        s = Schema.of("a", "b:integer", "c:float", "d:categorical")
        assert s.type_of("a") == AttrType.TEXT
        assert s.type_of("b") == AttrType.INTEGER
        assert s.type_of("c") == AttrType.FLOAT
        assert s.type_of("d") == AttrType.CATEGORICAL

    def test_of_accepts_attribute_objects(self):
        s = Schema.of(Attribute("x", AttrType.FLOAT), "y")
        assert s.type_of("x") == AttrType.FLOAT

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a:decimal")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema.of("a", "a")

    def test_index_of(self):
        s = Schema.of("a", "b", "c")
        assert s.index_of("b") == 1
        with pytest.raises(SchemaError):
            s.index_of("z")

    def test_contains_and_len(self):
        s = Schema.of("a", "b")
        assert "a" in s
        assert "z" not in s
        assert len(s) == 2

    def test_project_preserves_order(self):
        s = Schema.of("a", "b:integer", "c")
        p = s.project(["c", "b"])
        assert p.names == ["c", "b"]
        assert p.type_of("b") == AttrType.INTEGER

    def test_rename(self):
        s = Schema.of("a", "b")
        r = s.rename({"a": "x"})
        assert r.names == ["x", "b"]
        # original untouched
        assert s.names == ["a", "b"]

    def test_equality(self):
        assert Schema.of("a", "b") == Schema.of("a", "b")
        assert Schema.of("a") != Schema.of("a:integer")
