"""Tests for repro.evaluation.bootstrap (percentile intervals)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import EvaluationError
from repro.evaluation.bootstrap import (
    Interval,
    bootstrap_quality,
    significant_gap,
)
from repro.evaluation.metrics import evaluate_repairs


def make_triple(n_rows=100, n_errors=20, n_fixed=15, n_bad_repairs=3, seed=0):
    """(dirty, cleaned, clean) with controlled repair outcomes."""
    rng = random.Random(seed)
    schema = Schema.of("a:categorical", "b:categorical")
    clean = Table.from_rows(
        schema, [[f"x{i % 7}", f"y{i % 5}"] for i in range(n_rows)]
    )
    dirty = clean.copy()
    error_rows = rng.sample(range(n_rows), n_errors)
    for i in error_rows:
        dirty.set_cell(i, "a", "ERR")
    cleaned = dirty.copy()
    for i in error_rows[:n_fixed]:
        cleaned.set_cell(i, "a", clean.cell(i, "a"))  # correct repair
    good_rows = [i for i in range(n_rows) if i not in error_rows]
    for i in good_rows[:n_bad_repairs]:
        cleaned.set_cell(i, "b", "OOPS")  # wrong modification
    return dirty, cleaned, clean


class TestBootstrapQuality:
    def test_point_estimates_match_evaluate_repairs(self):
        dirty, cleaned, clean = make_triple()
        intervals = bootstrap_quality(dirty, cleaned, clean, n_resamples=50)
        q = evaluate_repairs(dirty, cleaned, clean)
        assert intervals.precision.point == pytest.approx(q.precision)
        assert intervals.recall.point == pytest.approx(q.recall)
        assert intervals.f1.point == pytest.approx(q.f1)

    def test_interval_brackets_point(self):
        dirty, cleaned, clean = make_triple()
        intervals = bootstrap_quality(dirty, cleaned, clean, n_resamples=200)
        for metric in (intervals.precision, intervals.recall, intervals.f1):
            assert metric.low <= metric.point <= metric.high

    def test_deterministic_per_seed(self):
        dirty, cleaned, clean = make_triple()
        a = bootstrap_quality(dirty, cleaned, clean, n_resamples=100, seed=3)
        b = bootstrap_quality(dirty, cleaned, clean, n_resamples=100, seed=3)
        assert a.f1 == b.f1

    def test_wider_confidence_widens_interval(self):
        dirty, cleaned, clean = make_triple()
        narrow = bootstrap_quality(
            dirty, cleaned, clean, n_resamples=300, confidence=0.5
        )
        wide = bootstrap_quality(
            dirty, cleaned, clean, n_resamples=300, confidence=0.99
        )
        assert wide.f1.high - wide.f1.low >= narrow.f1.high - narrow.f1.low

    def test_perfect_cleaner_degenerate_interval(self):
        dirty, cleaned, clean = make_triple(n_errors=10, n_fixed=10, n_bad_repairs=0)
        intervals = bootstrap_quality(dirty, cleaned, clean, n_resamples=100)
        assert intervals.precision.point == 1.0
        assert intervals.precision.high == 1.0

    def test_shape_mismatch_rejected(self):
        dirty, cleaned, clean = make_triple()
        short = Table.from_rows(clean.schema, [["x0", "y0"]])
        with pytest.raises(EvaluationError, match="same number of rows"):
            bootstrap_quality(short, cleaned, clean)

    def test_bad_params_rejected(self):
        dirty, cleaned, clean = make_triple()
        with pytest.raises(EvaluationError, match="n_resamples"):
            bootstrap_quality(dirty, cleaned, clean, n_resamples=0)
        with pytest.raises(EvaluationError, match="confidence"):
            bootstrap_quality(dirty, cleaned, clean, confidence=1.0)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=10, deadline=None)
    def test_intervals_stay_in_unit_range(self, seed):
        dirty, cleaned, clean = make_triple(seed=seed)
        intervals = bootstrap_quality(
            dirty, cleaned, clean, n_resamples=60, seed=seed
        )
        for metric in (intervals.precision, intervals.recall, intervals.f1):
            assert 0.0 <= metric.low <= metric.high <= 1.0


class TestInterval:
    def test_contains(self):
        interval = Interval(0.5, 0.4, 0.6, 0.95)
        assert 0.5 in interval
        assert 0.39 not in interval
        assert "x" not in interval

    def test_overlaps(self):
        a = Interval(0.5, 0.4, 0.6, 0.95)
        b = Interval(0.55, 0.58, 0.7, 0.95)
        c = Interval(0.9, 0.85, 0.95, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_str_format(self):
        assert str(Interval(0.5, 0.4, 0.6, 0.95)) == "0.500 [0.400, 0.600]"


class TestSignificantGap:
    def test_clear_gap_detected(self):
        dirty_a, cleaned_a, clean_a = make_triple(n_fixed=19, n_bad_repairs=0)
        dirty_b, cleaned_b, clean_b = make_triple(n_fixed=2, n_bad_repairs=10)
        good = bootstrap_quality(dirty_a, cleaned_a, clean_a, n_resamples=200)
        bad = bootstrap_quality(dirty_b, cleaned_b, clean_b, n_resamples=200)
        assert significant_gap(good, bad, "f1")
        assert not significant_gap(bad, good, "f1")

    def test_self_comparison_not_significant(self):
        dirty, cleaned, clean = make_triple()
        a = bootstrap_quality(dirty, cleaned, clean, n_resamples=200, seed=1)
        b = bootstrap_quality(dirty, cleaned, clean, n_resamples=200, seed=2)
        assert not significant_gap(a, b, "f1")
