"""Tests for repro.bayesnet.dag."""

import pytest

from repro.bayesnet.dag import DAG
from repro.errors import CycleError, GraphError


@pytest.fixture
def chain() -> DAG:
    g = DAG(["a", "b", "c", "d"])
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestNodes:
    def test_add_node_idempotent(self):
        g = DAG()
        g.add_node("x")
        g.add_node("x")
        assert g.nodes == ["x"]

    def test_remove_node_drops_edges(self, chain):
        chain.remove_node("b")
        assert "b" not in chain
        assert chain.n_edges == 0

    def test_unknown_node_rejected(self, chain):
        with pytest.raises(GraphError):
            chain.parents("zzz")


class TestEdges:
    def test_add_and_query(self, chain):
        assert chain.has_edge("a", "b")
        assert not chain.has_edge("b", "a")
        assert chain.edge_weight("a", "b") == 1.0

    def test_cycle_rejected(self, chain):
        with pytest.raises(CycleError):
            chain.add_edge("c", "a")

    def test_self_loop_rejected(self, chain):
        with pytest.raises(CycleError):
            chain.add_edge("a", "a")

    def test_remove_missing_edge_rejected(self, chain):
        with pytest.raises(GraphError):
            chain.remove_edge("a", "d")

    def test_edges_listing(self, chain):
        chain.add_edge("c", "d", weight=0.5)
        assert ("c", "d", 0.5) in chain.edges()
        assert chain.n_edges == 3


class TestNeighbourhoods:
    def test_parents_children(self, chain):
        assert chain.parents("b") == ["a"]
        assert chain.children("b") == ["c"]

    def test_markov_blanket_includes_coparents(self):
        g = DAG(["x", "y", "z"])
        g.add_edge("x", "z")
        g.add_edge("y", "z")
        # x's blanket: child z and co-parent y
        assert g.markov_blanket("x") == {"y", "z"}

    def test_markov_blanket_chain(self, chain):
        assert chain.markov_blanket("b") == {"a", "c"}

    def test_isolated(self, chain):
        assert chain.is_isolated("d")
        assert not chain.is_isolated("a")


class TestTraversal:
    def test_has_path(self, chain):
        assert chain.has_path("a", "c")
        assert not chain.has_path("c", "a")
        assert chain.has_path("a", "a")

    def test_ancestors_descendants(self, chain):
        assert chain.ancestors("c") == {"a", "b"}
        assert chain.descendants("a") == {"b", "c"}
        assert chain.ancestors("a") == set()

    def test_topological_order(self, chain):
        order = chain.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")
        assert set(order) == {"a", "b", "c", "d"}


class TestDerivation:
    def test_copy_independent(self, chain):
        c = chain.copy()
        c.add_edge("c", "d")
        assert not chain.has_edge("c", "d")

    def test_equality_ignores_weights(self, chain):
        other = DAG(["a", "b", "c", "d"])
        other.add_edge("a", "b", weight=9.0)
        other.add_edge("b", "c", weight=0.1)
        assert chain == other

    def test_pretty_lists_isolated(self, chain):
        text = chain.pretty()
        assert "isolated" in text
        assert "a -> b" in text
