"""Tests for the BClean scoring stack: confidence (Eq. 3), co-occurrence
(Algorithm 2), compensatory score (Eq. 2), and the log mapping."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.constraints.builtin import MinLength, NotNull, Pattern
from repro.constraints.registry import UCRegistry
from repro.core.compensatory import CompensatoryScorer, log_compensatory
from repro.core.confidence import (
    reliability_flags,
    table_confidences,
    tuple_confidence,
)
from repro.core.cooccurrence import CooccurrenceIndex
from repro.dataset.schema import Schema
from repro.dataset.table import Table


@pytest.fixture
def zip_registry() -> UCRegistry:
    return (
        UCRegistry()
        .add("ZipCode", NotNull(), Pattern(r"[0-9]{5}"))
        .add("City", NotNull(), MinLength(2))
        .add("State", NotNull())
        .add("Name", NotNull())
    )


class TestTupleConfidence:
    def test_clean_tuple_confidence_one(self, zip_registry):
        row = {"Name": "a", "City": "bb", "State": "CA", "ZipCode": "35150"}
        assert tuple_confidence(row, zip_registry, lam=1.0) == 1.0

    def test_eq3_formula(self, zip_registry):
        # one violation of four attributes, λ=1: (3 − 1)/4 = 0.5
        row = {"Name": "a", "City": "bb", "State": "CA", "ZipCode": None}
        assert tuple_confidence(row, zip_registry, lam=1.0) == pytest.approx(0.5)

    def test_lambda_scales_penalty(self, zip_registry):
        row = {"Name": "a", "City": "bb", "State": "CA", "ZipCode": None}
        # λ=0: 3/4; λ=3: (3-3)/4 = 0
        assert tuple_confidence(row, zip_registry, lam=0.0) == pytest.approx(0.75)
        assert tuple_confidence(row, zip_registry, lam=3.0) == 0.0

    def test_clamped_at_zero(self, zip_registry):
        row = {"Name": None, "City": None, "State": None, "ZipCode": None}
        assert tuple_confidence(row, zip_registry, lam=10.0) == 0.0

    def test_empty_row(self, zip_registry):
        assert tuple_confidence({}, zip_registry, lam=1.0) == 0.0

    @given(st.floats(0, 20))
    def test_confidence_in_unit_interval(self, lam):
        reg = UCRegistry().add("a", NotNull())
        for row in ({"a": "x", "b": "y"}, {"a": None, "b": "y"}):
            c = tuple_confidence(row, reg, lam)
            assert 0.0 <= c <= 1.0


class TestTableConfidences:
    def test_matches_rowwise(self, dirty_customer_table, zip_registry):
        fast = table_confidences(dirty_customer_table, zip_registry, lam=1.0)
        slow = [
            tuple_confidence(r.as_dict(), zip_registry, 1.0)
            for r in dirty_customer_table.rows()
        ]
        assert fast == pytest.approx(slow)

    def test_reliability_flags(self):
        assert reliability_flags([0.2, 0.5, 0.9], tau=0.5) == [False, True, True]


@pytest.fixture
def cooc(customer_table) -> CooccurrenceIndex:
    return CooccurrenceIndex(customer_table)


class TestCooccurrenceIndex:
    def test_value_counts(self, cooc):
        assert cooc.count("State", "CA") == 3
        assert cooc.count("State", "nope") == 0

    def test_pair_counts(self, cooc):
        assert cooc.pair_count("City", "sylacauga", "State", "CA") == 3
        assert cooc.pair_count("City", "sylacauga", "State", "KT") == 0

    def test_corr_positive_for_fd_partner(self, cooc):
        assert cooc.corr("City", "sylacauga", "ZipCode", "35150") > 0.0

    def test_corr_zero_for_never_cooccurring(self, cooc):
        assert cooc.corr("City", "sylacauga", "ZipCode", "35960") == 0.0

    def test_corr_exclude_self_removes_singleton_evidence(self, customer_table):
        # Make a value unique: its only 'support' is its own row.
        t = customer_table.copy()
        t.set_cell(0, "City", "uniqueville")
        idx = CooccurrenceIndex(t)
        with_self = idx.corr("City", "uniqueville", "ZipCode", "35150")
        without = idx.corr(
            "City", "uniqueville", "ZipCode", "35150", exclude_self=True
        )
        assert without == 0.0
        assert with_self >= without

    def test_beta_penalty_reduces_corr(self, customer_table):
        confident = CooccurrenceIndex(customer_table, None)
        # Mark every tuple unreliable: all pair weights become -beta.
        low_conf = CooccurrenceIndex(
            customer_table, [0.0] * customer_table.n_rows, tau=0.5, beta=2.0
        )
        assert low_conf.corr("City", "sylacauga", "State", "CA") <= 0.0
        assert confident.corr("City", "sylacauga", "State", "CA") > 0.0

    def test_cooccurring_values_excludes_null(self, customer_table):
        t = customer_table.copy()
        t.set_cell(0, "City", None)
        idx = CooccurrenceIndex(t)
        values = idx.cooccurring_values("City", "State", "CA")
        assert None not in values
        assert "sylacauga" in values

    def test_n_pairs_stored(self, cooc):
        assert cooc.n_pairs_stored() > 0


class TestCompensatoryScorer:
    def test_correct_value_beats_wrong(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        scorer = CompensatoryScorer(idx)
        row = customer_table.row(0).as_dict()
        right = scorer.score("CA", row, "State")
        wrong = scorer.score("KT", row, "State")
        assert right > wrong

    def test_incumbent_self_exclusion(self, customer_table):
        t = customer_table.copy()
        t.set_cell(0, "State", "XX")  # unique wrong value
        idx = CooccurrenceIndex(t)
        scorer = CompensatoryScorer(idx)
        row = t.row(0).as_dict()
        as_incumbent = scorer.score("XX", row, "State", is_incumbent=True)
        assert as_incumbent == pytest.approx(0.0)

    def test_frequency_term(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        with_freq = CompensatoryScorer(idx, frequency_weight=1.0)
        without = CompensatoryScorer(idx, frequency_weight=0.0)
        row = customer_table.row(0).as_dict()
        assert with_freq.score("CA", row, "State") > without.score(
            "CA", row, "State"
        )

    def test_restricted_context(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        scorer = CompensatoryScorer(idx)
        row = customer_table.row(0).as_dict()
        only_zip = scorer.score("CA", row, "State", ["ZipCode"])
        assert only_zip > 0.0


class TestLogCompensatory:
    def test_best_maps_to_zero(self):
        out = log_compensatory({"a": 0.9, "b": 0.1}, smoothing=0.05)
        assert out["a"] == 0.0
        assert out["b"] < 0.0

    def test_all_equal_no_influence(self):
        out = log_compensatory({"a": 0.5, "b": 0.5})
        assert out["a"] == out["b"] == 0.0

    def test_tiny_scores_damped(self):
        # Scores far below the smoothing level barely separate.
        out = log_compensatory({"a": 0.001, "b": 0.0}, smoothing=0.05)
        assert abs(out["b"]) < 0.05

    def test_negative_scores_clipped(self):
        out = log_compensatory({"a": -5.0, "b": 0.5}, smoothing=0.05)
        assert out["a"] == pytest.approx(math.log(0.05 / 0.55))

    def test_empty(self):
        assert log_compensatory({}) == {}

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            log_compensatory({"a": 1.0}, smoothing=0.0)

    @given(
        st.dictionaries(
            st.text(max_size=3),
            st.floats(-5, 5, allow_nan=False),
            min_size=1,
            max_size=8,
        )
    )
    def test_order_preserved(self, scores):
        out = log_compensatory(scores, smoothing=0.05)
        items = sorted(scores.items(), key=lambda kv: max(kv[1], 0.0))
        mapped = [out[k] for k, _ in items]
        assert mapped == sorted(mapped)
