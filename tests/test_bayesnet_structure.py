"""Tests for the structure learners (scores, hill-climb, Chow-Liu, PC, FDX)."""

import random

import numpy as np
import pytest

from repro.bayesnet.structure.chowliu import chow_liu_tree
from repro.bayesnet.structure.fdx import (
    FDXConfig,
    SimilarityProfiler,
    _autoregression_for_order,
    _udu_decompose,
    fdx_structure,
)
from repro.bayesnet.structure.hillclimb import hill_climb
from repro.bayesnet.structure.pc import pc_algorithm
from repro.bayesnet.structure.scores import BDeuScore, BICScore, K2Score, make_score
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import StructureLearningError


def make_fd_table(n: int = 300, seed: int = 1) -> Table:
    """key → value FD plus an independent noise column."""
    rng = random.Random(seed)
    schema = Schema.of("key:categorical", "value:categorical", "noise:categorical")
    mapping = {f"k{i}": f"v{i}" for i in range(8)}
    rows = [
        [k, mapping[k], rng.choice("xyz")]
        for k in (rng.choice(list(mapping)) for _ in range(n))
    ]
    return Table.from_rows(schema, rows)


class TestScores:
    @pytest.mark.parametrize("score_name", ["bic", "k2", "bdeu"])
    def test_dependent_parent_beats_empty(self, score_name):
        table = make_fd_table()
        scorer = make_score(score_name, table)
        assert scorer.family("value", ("key",)) > scorer.family("value", ())

    @pytest.mark.parametrize("score_name", ["bic", "k2", "bdeu"])
    def test_independent_parent_not_preferred(self, score_name):
        table = make_fd_table()
        scorer = make_score(score_name, table)
        assert scorer.family("noise", ()) >= scorer.family("noise", ("key",)) - 1e-9 or (
            # BIC always penalises; Bayesian scores may tie within noise
            score_name != "bic"
        )

    def test_bic_penalises_complexity(self):
        table = make_fd_table()
        scorer = BICScore(table)
        # Adding a useless second parent must not improve BIC.
        one = scorer.family("value", ("key",))
        two = scorer.family("value", ("key", "noise"))
        assert two <= one

    def test_cache_hits(self):
        table = make_fd_table()
        scorer = K2Score(table)
        a = scorer.family("value", ("key",))
        b = scorer.family("value", ("key",))
        assert a == b
        assert len(scorer._cache) == 1

    def test_unknown_score_rejected(self):
        with pytest.raises(ValueError):
            make_score("nope", make_fd_table())

    def test_bdeu_ess(self):
        table = make_fd_table()
        s1 = BDeuScore(table, equivalent_sample_size=1.0)
        s10 = BDeuScore(table, equivalent_sample_size=10.0)
        assert s1.family("value", ("key",)) != s10.family("value", ("key",))


class TestHillClimb:
    def test_finds_fd_edge(self):
        table = make_fd_table()
        result = hill_climb(table, score="bic")
        dag = result.dag
        assert dag.has_edge("key", "value") or dag.has_edge("value", "key")

    def test_respects_max_parents(self):
        table = make_fd_table()
        result = hill_climb(table, max_parents=1)
        assert all(len(result.dag.parents(n)) <= 1 for n in result.dag.nodes)

    def test_score_improves_over_empty(self):
        table = make_fd_table()
        scorer = BICScore(table)
        empty_score = sum(scorer.family(n, ()) for n in table.schema.names)
        result = hill_climb(table, score=scorer)
        assert result.score >= empty_score

    def test_acyclic(self):
        table = make_fd_table()
        dag = hill_climb(table).dag
        dag.topological_order()  # raises on cycles


class TestChowLiu:
    def test_tree_shape(self):
        table = make_fd_table()
        dag = chow_liu_tree(table)
        # A spanning tree over m nodes has m-1 edges.
        assert dag.n_edges == len(dag) - 1

    def test_root_has_no_parents(self):
        table = make_fd_table()
        dag = chow_liu_tree(table, root="value")
        assert dag.parents("value") == []

    def test_unknown_root_rejected(self):
        with pytest.raises(StructureLearningError):
            chow_liu_tree(make_fd_table(), root="nope")

    def test_captures_strongest_dependency(self):
        table = make_fd_table()
        dag = chow_liu_tree(table, root="key")
        assert dag.has_edge("key", "value")


class TestPC:
    def test_removes_independent_edge(self):
        table = make_fd_table(n=500)
        result = pc_algorithm(table, alpha=0.01)
        # noise is independent of key and value: at most one spurious edge
        noise_edges = [
            (u, v)
            for u, v, _ in result.dag.edges()
            if "noise" in (u, v)
        ]
        assert len(noise_edges) <= 1

    def test_keeps_dependent_edge(self):
        table = make_fd_table(n=500)
        result = pc_algorithm(table, alpha=0.01)
        assert result.dag.has_edge("key", "value") or result.dag.has_edge(
            "value", "key"
        )

    def test_acyclic(self):
        result = pc_algorithm(make_fd_table())
        result.dag.topological_order()

    def test_counts_tests(self):
        result = pc_algorithm(make_fd_table())
        assert result.n_tests > 0


class TestUDU:
    def test_reconstruction(self):
        rng = np.random.default_rng(5)
        a = rng.normal(size=(5, 5))
        theta = a @ a.T + 5 * np.eye(5)
        u, d = _udu_decompose(theta)
        assert np.allclose(u @ d @ u.T, theta, atol=1e-8)
        # U unit upper triangular
        assert np.allclose(np.diag(u), 1.0)
        assert np.allclose(u, np.triu(u))

    def test_autoregression_strictly_upper_in_order(self):
        rng = np.random.default_rng(6)
        a = rng.normal(size=(4, 4))
        theta = a @ a.T + 4 * np.eye(4)
        order = [2, 0, 3, 1]
        b = _autoregression_for_order(theta, order)
        # B[k, j] != 0 only when k precedes j in the ordering
        pos = {v: i for i, v in enumerate(order)}
        for k in range(4):
            for j in range(4):
                if abs(b[k, j]) > 1e-9:
                    assert pos[k] < pos[j]

    def test_non_pd_rejected(self):
        with pytest.raises(StructureLearningError):
            _udu_decompose(np.array([[1.0, 2.0], [2.0, 1.0]]))


class TestFDX:
    def test_profiler_shape_and_range(self):
        table = make_fd_table(n=100)
        profiler = SimilarityProfiler(table, FDXConfig(max_pairs_per_attribute=50))
        samples = profiler.profile()
        assert samples.shape[1] == 3
        assert samples.shape[0] <= 3 * 50
        assert np.all(samples >= 0.0) and np.all(samples <= 1.0)

    def test_finds_fd_edge(self):
        table = make_fd_table(n=400)
        result = fdx_structure(table)
        dag = result.dag
        assert dag.has_edge("key", "value") or dag.has_edge("value", "key")

    def test_tolerates_typos(self):
        table = make_fd_table(n=400)
        # corrupt 5% of the value column with typos
        rng = random.Random(9)
        col = table.column("value")
        for i in rng.sample(range(len(col)), 20):
            col[i] = col[i] + "x"
        result = fdx_structure(table)
        assert result.dag.has_edge("key", "value") or result.dag.has_edge(
            "value", "key"
        )

    def test_respects_max_parents(self):
        table = make_fd_table(n=200)
        config = FDXConfig(max_parents=1)
        dag = fdx_structure(table, config).dag
        assert all(len(dag.parents(n)) <= 1 for n in dag.nodes)

    def test_single_attribute_rejected(self):
        table = Table.from_rows(Schema.of("only"), [["a"], ["b"]])
        with pytest.raises(StructureLearningError):
            fdx_structure(table)

    def test_too_few_rows_rejected(self):
        table = Table.from_rows(Schema.of("a", "b"), [["x", "y"]])
        with pytest.raises(StructureLearningError):
            fdx_structure(table)

    def test_strict_equality_ablation_runs(self):
        table = make_fd_table(n=200)
        config = FDXConfig(use_strict_equality=True)
        result = fdx_structure(table, config)
        assert result.n_samples > 0

    def test_deterministic(self):
        table = make_fd_table(n=200)
        a = fdx_structure(table)
        b = fdx_structure(table)
        assert {(u, v) for u, v, _ in a.dag.edges()} == {
            (u, v) for u, v, _ in b.dag.edges()
        }
