"""Integration tests for the BClean engine (Algorithm 1 + variants)."""

import pytest

from repro.bayesnet.dag import DAG
from repro.constraints.builtin import NotNull, Pattern
from repro.constraints.registry import UCRegistry
from repro.core.config import BCleanConfig, InferenceMode
from repro.core.engine import BClean, clean_table
from repro.core.repairs import apply_repairs
from repro.dataset.diff import cells_equal
from repro.errors import CleaningError


@pytest.fixture
def registry() -> UCRegistry:
    return (
        UCRegistry()
        .add("Name", NotNull())
        .add("City", NotNull())
        .add("State", NotNull(), Pattern(r"[A-Z]{2}"))
        .add("ZipCode", NotNull(), Pattern(r"[0-9]{5}"))
    )


@pytest.fixture
def star_dag(customer_schema) -> DAG:
    dag = DAG(customer_schema.names)
    dag.add_edge("ZipCode", "City")
    dag.add_edge("ZipCode", "State")
    dag.add_edge("Name", "ZipCode")
    return dag


class TestEngineLifecycle:
    def test_clean_before_fit_rejected(self):
        with pytest.raises(CleaningError):
            BClean().clean()

    def test_set_network_before_fit_rejected(self, star_dag):
        with pytest.raises(CleaningError):
            BClean().set_network(star_dag)

    def test_unknown_structure_rejected(self, dirty_customer_table):
        engine = BClean(BCleanConfig.pi(structure="nope"))
        with pytest.raises(CleaningError):
            engine.fit(dirty_customer_table)

    def test_mismatched_dag_rejected(self, dirty_customer_table):
        engine = BClean()
        with pytest.raises(CleaningError):
            engine.fit(dirty_customer_table, dag=DAG(["other"]))


class TestCleaningSmallTable:
    def test_repairs_planted_errors(
        self, dirty_customer_table, customer_table, registry, star_dag
    ):
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        result = engine.clean()
        # inconsistency: row 1 State KT -> CA (zip 35150)
        assert result.cleaned.cell(1, "State") == "CA"
        # typo: row 3 City cenre -> centre
        assert result.cleaned.cell(3, "City") == "centre"
        # missing: row 6 ZipCode NULL -> 10001
        assert result.cleaned.cell(6, "ZipCode") == "10001"

    def test_clean_cells_untouched(
        self, dirty_customer_table, customer_table, registry, star_dag
    ):
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        result = engine.clean()
        planted = {(1, "State"), (3, "City"), (6, "ZipCode")}
        for r in result.repairs:
            assert (r.row, r.attribute) in planted

    def test_idempotent_on_clean_data(self, customer_table, registry, star_dag):
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(customer_table, dag=star_dag)
        result = engine.clean()
        assert result.n_repairs == 0

    def test_repair_records_consistent(
        self, dirty_customer_table, registry, star_dag
    ):
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        result = engine.clean()
        rebuilt = apply_repairs(dirty_customer_table, result.repairs)
        assert rebuilt == result.cleaned
        for r in result.repairs:
            assert not cells_equal(r.old_value, r.new_value)
            assert r.new_score > r.old_score

    def test_stats_populated(self, dirty_customer_table, registry, star_dag):
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        result = engine.clean()
        stats = result.stats
        assert stats.cells_total == dirty_customer_table.n_cells
        assert stats.cells_inspected > 0
        assert stats.candidates_evaluated > 0
        assert stats.repairs_made == result.n_repairs
        assert stats.total_seconds > 0


class TestVariants:
    @pytest.mark.parametrize("mode", list(InferenceMode))
    def test_all_modes_fix_inconsistency(
        self, dirty_customer_table, registry, star_dag, mode
    ):
        config = BCleanConfig(mode=mode, tau_clean=0.9)
        engine = BClean(config, registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        result = engine.clean()
        assert result.cleaned.cell(1, "State") == "CA"

    def test_pip_skips_cells(self, dirty_customer_table, registry, star_dag):
        engine = BClean(BCleanConfig.pip(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        result = engine.clean()
        assert result.stats.cells_skipped_pruning > 0

    def test_without_ucs_variant(self, dirty_customer_table, registry, star_dag):
        engine = BClean(BCleanConfig.without_ucs(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        result = engine.clean()
        # UCs disabled: no candidates filtered by constraints
        assert result.stats.candidates_filtered_uc == 0

    def test_uc_filter_counts(self, dirty_customer_table, registry, star_dag):
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        engine.clean()

    def test_basic_mode_evaluates_more_per_candidate(
        self, dirty_customer_table, registry, star_dag
    ):
        # BASIC scores the full joint per candidate; PI only the blanket.
        # Both must agree on the planted repairs (quality parity).
        results = {}
        for config in (BCleanConfig.basic(), BCleanConfig.pi()):
            engine = BClean(config, registry)
            engine.fit(dirty_customer_table, dag=star_dag)
            results[config.mode] = engine.clean()
        basic = results[InferenceMode.BASIC]
        pi = results[InferenceMode.PARTITIONED]
        assert basic.cleaned.cell(1, "State") == pi.cleaned.cell(1, "State")


class TestConfigValidation:
    def test_negative_lambda_rejected(self):
        with pytest.raises(CleaningError):
            BCleanConfig(lam=-1.0)

    def test_tau_out_of_range_rejected(self):
        with pytest.raises(CleaningError):
            BCleanConfig(tau=1.5)

    def test_mode_from_string(self):
        assert BCleanConfig(mode="pip").mode == InferenceMode.PARTITIONED_PRUNED

    def test_factories(self):
        assert BCleanConfig.basic().mode == InferenceMode.BASIC
        assert BCleanConfig.without_ucs().use_ucs is False


class TestSetNetwork:
    def test_refit_restricted(self, dirty_customer_table, registry, star_dag):
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(dirty_customer_table, dag=star_dag)
        new_dag = star_dag.copy()
        new_dag.remove_edge("Name", "ZipCode")
        engine.set_network(new_dag, refit_nodes=["ZipCode"])
        assert engine.dag.n_edges == 2
        result = engine.clean()
        assert result.cleaned.cell(1, "State") == "CA"


class TestCleanTableHelper:
    def test_one_shot(self, dirty_customer_table, registry):
        result = clean_table(dirty_customer_table, BCleanConfig.pi(), registry)
        assert result.cleaned.n_rows == dirty_customer_table.n_rows
