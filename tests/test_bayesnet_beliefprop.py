"""Tests for repro.bayesnet.beliefprop (sum-product message passing).

The load-bearing check is exactness on tree factor graphs: for random
tree-structured networks fitted from random tables, BP marginals must
agree with variable elimination to floating-point accuracy.  Loopy
graphs are held to the weaker (but still falsifiable) standard of
convergence plus closeness to the exact posterior.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet.beliefprop import (
    BeliefPropagation,
    joint_from_marginals,
)
from repro.bayesnet.dag import DAG
from repro.bayesnet.inference import VariableElimination
from repro.bayesnet.model import DiscreteBayesNet
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import InferenceError


@pytest.fixture
def sprinkler_bn() -> DiscreteBayesNet:
    schema = Schema.of("rain:categorical", "sprinkler:categorical", "wet:categorical")
    rows = []
    rows += [["yes", "off", "yes"]] * 30
    rows += [["no", "on", "yes"]] * 25
    rows += [["no", "off", "no"]] * 40
    rows += [["yes", "on", "yes"]] * 5
    table = Table.from_rows(schema, rows)
    dag = DAG(schema.names)
    dag.add_edge("rain", "wet")
    dag.add_edge("sprinkler", "wet")
    return DiscreteBayesNet.fit(table, dag, alpha=0.1)


@pytest.fixture
def diamond_bn() -> DiscreteBayesNet:
    """a → b, a → c, b → d, c → d: the smallest loopy factor graph."""
    schema = Schema.of(
        "a:categorical", "b:categorical", "c:categorical", "d:categorical"
    )
    rng = random.Random(7)
    rows = []
    for _ in range(300):
        a = rng.choice(["x", "y"])
        b = a if rng.random() < 0.8 else ("x" if a == "y" else "y")
        c = a if rng.random() < 0.7 else ("x" if a == "y" else "y")
        d = b if rng.random() < 0.6 else c
        rows.append([a, b, c, d])
    table = Table.from_rows(schema, rows)
    dag = DAG(schema.names)
    dag.add_edge("a", "b")
    dag.add_edge("a", "c")
    dag.add_edge("b", "d")
    dag.add_edge("c", "d")
    return DiscreteBayesNet.fit(table, dag, alpha=0.5)


def assert_close_distributions(p, q, tol=1e-9):
    assert set(p) == set(q)
    for value in p:
        assert p[value] == pytest.approx(q[value], abs=tol)


class TestTreeExactness:
    def test_prior_marginals_match_ve(self, sprinkler_bn):
        bp = BeliefPropagation(sprinkler_bn)
        ve = VariableElimination(sprinkler_bn)
        result = bp.run()
        assert result.is_tree
        assert result.converged
        for var in ("rain", "sprinkler", "wet"):
            assert_close_distributions(result.marginal(var), ve.query(var))

    def test_posterior_with_evidence_matches_ve(self, sprinkler_bn):
        bp = BeliefPropagation(sprinkler_bn)
        ve = VariableElimination(sprinkler_bn)
        assert_close_distributions(
            bp.query("rain", {"wet": "yes"}), ve.query("rain", {"wet": "yes"})
        )
        assert_close_distributions(
            bp.query("sprinkler", {"wet": "no", "rain": "no"}),
            ve.query("sprinkler", {"wet": "no", "rain": "no"}),
        )

    def test_explaining_away(self, sprinkler_bn):
        """Observing rain should lower the sprinkler posterior vs wet-only."""
        bp = BeliefPropagation(sprinkler_bn)
        wet_only = bp.query("sprinkler", {"wet": "yes"})
        wet_and_rain = bp.query("sprinkler", {"wet": "yes", "rain": "yes"})
        assert wet_and_rain["on"] < wet_only["on"]

    def test_map_value_matches_ve(self, sprinkler_bn):
        bp = BeliefPropagation(sprinkler_bn)
        ve = VariableElimination(sprinkler_bn)
        assert bp.map_value("rain", {"wet": "yes"}) == ve.map_value(
            "rain", {"wet": "yes"}
        )

    def test_unseen_evidence_value_falls_back_to_marginal(self, sprinkler_bn):
        """Evidence outside the training domain must not crash (the CPT
        marginal-fallback semantics carry through the factor build)."""
        posterior = BeliefPropagation(sprinkler_bn).query(
            "rain", {"wet": "NEVER-SEEN"}
        )
        assert sum(posterior.values()) == pytest.approx(1.0)


def random_tree_bn(seed: int, n_nodes: int, n_rows: int) -> DiscreteBayesNet:
    """A random tree-structured BN fitted from random categorical data."""
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(n_nodes)]
    schema = Schema.of(*[f"{n}:categorical" for n in names])
    rows = [
        [rng.choice(["a", "b", "c"]) for _ in names] for _ in range(n_rows)
    ]
    table = Table.from_rows(schema, rows)
    dag = DAG(names)
    for i in range(1, n_nodes):
        parent = names[rng.randrange(i)]
        dag.add_edge(parent, names[i])
    return DiscreteBayesNet.fit(table, dag, alpha=0.5)


class TestRandomTreeAgreement:
    @given(
        seed=st.integers(0, 10_000),
        n_nodes=st.integers(2, 6),
    )
    @settings(max_examples=20, deadline=None)
    def test_bp_equals_ve_on_random_trees(self, seed, n_nodes):
        bn = random_tree_bn(seed, n_nodes, n_rows=60)
        bp = BeliefPropagation(bn)
        ve = VariableElimination(bn)
        rng = random.Random(seed + 1)
        target = bn.nodes[rng.randrange(n_nodes)]
        evidence = {}
        for other in bn.nodes:
            if other != target and rng.random() < 0.5:
                evidence[other] = rng.choice(["a", "b", "c"])
        result = bp.run(evidence or None)
        assert result.is_tree
        assert_close_distributions(
            result.marginal(target), ve.query(target, evidence or None), tol=1e-7
        )

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_marginals_are_distributions(self, seed):
        bn = random_tree_bn(seed, 5, n_rows=40)
        result = BeliefPropagation(bn).run()
        for var, marginal in result.marginals.items():
            assert sum(marginal.values()) == pytest.approx(1.0)
            assert all(p >= 0 for p in marginal.values())


class TestLoopyGraphs:
    def test_diamond_is_not_tree(self, diamond_bn):
        result = BeliefPropagation(diamond_bn, damping=0.3).run()
        assert not result.is_tree

    def test_loopy_bp_converges_near_exact(self, diamond_bn):
        bp = BeliefPropagation(diamond_bn, max_iters=200, damping=0.3)
        ve = VariableElimination(diamond_bn)
        result = bp.run({"d": "x"})
        assert result.converged
        exact = ve.query("a", {"d": "x"})
        approx = result.marginal("a")
        for value in exact:
            assert approx[value] == pytest.approx(exact[value], abs=0.05)

    def test_iteration_cap_reported(self, diamond_bn):
        result = BeliefPropagation(diamond_bn, max_iters=1).run()
        assert result.iterations == 1


class TestValidation:
    def test_rejects_unknown_evidence_variable(self, sprinkler_bn):
        with pytest.raises(InferenceError, match="unknown"):
            BeliefPropagation(sprinkler_bn).run({"nope": "x"})

    def test_rejects_fully_observed_query(self, sprinkler_bn):
        with pytest.raises(InferenceError, match="observed"):
            BeliefPropagation(sprinkler_bn).run(
                {"rain": "yes", "sprinkler": "on", "wet": "yes"}
            )

    def test_rejects_bad_max_iters(self, sprinkler_bn):
        with pytest.raises(InferenceError):
            BeliefPropagation(sprinkler_bn, max_iters=0)

    def test_rejects_bad_damping(self, sprinkler_bn):
        with pytest.raises(InferenceError):
            BeliefPropagation(sprinkler_bn, damping=1.0)

    def test_unknown_marginal_variable(self, sprinkler_bn):
        result = BeliefPropagation(sprinkler_bn).run({"wet": "yes"})
        with pytest.raises(InferenceError, match="no marginal"):
            result.marginal("wet")


class TestIsolatedNodes:
    def test_isolated_node_gets_its_prior(self):
        """A node with no edges still has its own CPT factor, so its BP
        marginal is the (smoothed) empirical marginal."""
        schema = Schema.of("a:categorical", "b:categorical")
        rows = [["x", "p"]] * 7 + [["y", "q"]] * 3
        table = Table.from_rows(schema, rows)
        dag = DAG(schema.names)  # no edges at all
        bn = DiscreteBayesNet.fit(table, dag, alpha=1.0)
        result = BeliefPropagation(bn).run()
        assert result.is_tree
        marginal = result.marginal("a")
        assert marginal["x"] == pytest.approx(bn.cpts["a"].marginal_prob("x"))


class TestJointFromMarginals:
    def test_product_form_sums_to_one(self, sprinkler_bn):
        result = BeliefPropagation(sprinkler_bn).run()
        joint = joint_from_marginals(result.marginals, ["rain", "sprinkler"])
        assert sum(joint.values()) == pytest.approx(1.0)
        assert len(joint) == 4
