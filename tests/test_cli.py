"""Tests for repro.cli (the ``python -m repro`` interface).

End-to-end runs use real temp CSVs: the clean subcommand must write a
parseable output file whose repairs match the report, and the spec
parser must reject malformed constraint JSON with actionable errors.
"""

import json
import random

import pytest

from repro.cli import (
    load_uc_spec,
    main,
    merge_registries,
    parse_constraint,
)
from repro.constraints.builtin import NotNull, OneOf, Pattern
from repro.constraints.registry import UCRegistry
from repro.dataset.io import read_csv, write_csv
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.errors import ConstraintSpecError


@pytest.fixture
def dirty_csv(tmp_path):
    """A small FD-structured CSV with planted typos and a NULL."""
    rng = random.Random(3)
    schema = Schema.of("code:categorical", "name:categorical")
    mapping = {f"{i:05d}": f"site{i}" for i in range(5)}
    rows = []
    for _ in range(120):
        code = rng.choice(list(mapping))
        rows.append([code, mapping[code]])
    table = Table.from_rows(schema, rows)
    # plant errors the UCs can catch
    table.set_cell(0, "code", "0x001")
    table.set_cell(1, "name", None)
    path = tmp_path / "dirty.csv"
    write_csv(table, path)
    return path


class TestParseConstraint:
    def test_not_null(self):
        assert isinstance(parse_constraint({"type": "not_null"}), NotNull)

    def test_pattern(self):
        c = parse_constraint({"type": "pattern", "regex": "[0-9]{5}"})
        assert isinstance(c, Pattern)
        assert c.check("12345")
        assert not c.check("123")

    def test_one_of(self):
        c = parse_constraint({"type": "one_of", "values": ["CA", "NY"]})
        assert isinstance(c, OneOf)
        assert c.check("CA") and not c.check("XX")

    def test_lengths_and_values(self):
        assert parse_constraint({"type": "min_length", "bound": 2}).check("ab")
        assert not parse_constraint({"type": "max_length", "bound": 2}).check("abc")
        assert parse_constraint({"type": "min_value", "bound": 5}).check("7")
        assert not parse_constraint({"type": "max_value", "bound": 5}).check("7")

    def test_unknown_type_rejected(self):
        with pytest.raises(ConstraintSpecError, match="unknown constraint"):
            parse_constraint({"type": "telepathy"})

    def test_missing_field_rejected(self):
        with pytest.raises(ConstraintSpecError, match="requires field"):
            parse_constraint({"type": "pattern"})

    def test_non_object_rejected(self):
        with pytest.raises(ConstraintSpecError, match="must be an object"):
            parse_constraint("not_null")


class TestLoadUCSpec:
    def test_round_trip(self, tmp_path):
        spec = {
            "code": [
                {"type": "pattern", "regex": "[0-9]{5}"},
                {"type": "not_null"},
            ],
            "name": [{"type": "not_null"}],
        }
        path = tmp_path / "ucs.json"
        path.write_text(json.dumps(spec))
        registry = load_uc_spec(path)
        assert registry.check_cell("code", "12345")
        assert not registry.check_cell("code", "12x45")
        assert not registry.check_cell("name", None)

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConstraintSpecError, match="invalid JSON"):
            load_uc_spec(path)

    def test_non_object_spec(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2]")
        with pytest.raises(ConstraintSpecError, match="must be an object"):
            load_uc_spec(path)

    def test_non_list_constraints(self, tmp_path):
        path = tmp_path / "bad2.json"
        path.write_text('{"code": {"type": "not_null"}}')
        with pytest.raises(ConstraintSpecError, match="must be a list"):
            load_uc_spec(path)


class TestMergeRegistries:
    def test_union_of_attributes(self):
        a = UCRegistry().add("x", NotNull())
        b = UCRegistry().add("y", Pattern("[0-9]+"))
        merged = merge_registries(a, b)
        assert not merged.check_cell("x", None)
        assert not merged.check_cell("y", "abc")

    def test_same_attribute_appends(self):
        a = UCRegistry().add("x", NotNull())
        b = UCRegistry().add("x", Pattern("[0-9]+"))
        merged = merge_registries(a, b)
        assert not merged.check_cell("x", None)  # from a
        assert not merged.check_cell("x", "abc")  # from b


class TestProfileCommand:
    def test_profile_prints_columns(self, dirty_csv, capsys):
        assert main(["profile", str(dirty_csv)]) == 0
        out = capsys.readouterr().out
        assert "code" in out and "name" in out
        assert "120 rows" in out

    def test_missing_file(self, capsys):
        assert main(["profile", "/nonexistent/file.csv"]) == 2
        assert "error" in capsys.readouterr().err


class TestNetworkCommand:
    def test_network_prints_dag(self, dirty_csv, capsys):
        assert main(["network", str(dirty_csv)]) == 0
        out = capsys.readouterr().out
        assert "DAG with 2 nodes" in out

    def test_structure_choice(self, dirty_csv, capsys):
        assert main(["network", str(dirty_csv), "--structure", "chowliu"]) == 0
        assert "DAG" in capsys.readouterr().out


class TestCleanCommand:
    def test_end_to_end_with_spec(self, dirty_csv, tmp_path, capsys):
        spec = {
            "code": [
                {"type": "pattern", "regex": "[0-9]{5}"},
                {"type": "not_null"},
            ],
            "name": [{"type": "not_null"}],
        }
        spec_path = tmp_path / "ucs.json"
        spec_path.write_text(json.dumps(spec))
        out_path = tmp_path / "cleaned.csv"

        code = main(
            [
                "clean",
                str(dirty_csv),
                "--output",
                str(out_path),
                "--ucs",
                str(spec_path),
            ]
        )
        assert code == 0
        cleaned = read_csv(
            out_path, schema=Schema.of("code:categorical", "name:categorical")
        )
        assert cleaned.n_rows == 120
        # the planted typo and NULL must be gone: the code is restored to
        # the FD partner of the row's (clean) name, and the NULL is filled
        fixed_code = cleaned.cell(0, "code")
        partner_name = cleaned.cell(0, "name")
        assert fixed_code == f"{int(str(partner_name)[4:]):05d}"
        assert cleaned.cell(1, "name") is not None
        out = capsys.readouterr().out
        assert "repairs" in out

    def test_induced_ucs_flag(self, dirty_csv, tmp_path):
        out_path = tmp_path / "cleaned.csv"
        code = main(
            ["clean", str(dirty_csv), "--output", str(out_path), "--induce-ucs"]
        )
        assert code == 0
        assert out_path.exists()

    def test_report_file(self, dirty_csv, tmp_path):
        out_path = tmp_path / "cleaned.csv"
        report_path = tmp_path / "repairs.txt"
        code = main(
            [
                "clean",
                str(dirty_csv),
                "--output",
                str(out_path),
                "--report",
                str(report_path),
            ]
        )
        assert code == 0
        assert "repairs=" in report_path.read_text()

    def test_bad_spec_is_reported(self, dirty_csv, tmp_path, capsys):
        spec_path = tmp_path / "bad.json"
        spec_path.write_text('{"code": [{"type": "warp"}]}')
        code = main(
            [
                "clean",
                str(dirty_csv),
                "--output",
                str(tmp_path / "out.csv"),
                "--ucs",
                str(spec_path),
            ]
        )
        assert code == 1
        assert "unknown constraint" in capsys.readouterr().err

    def test_variant_selection(self, dirty_csv, tmp_path):
        for variant in ("basic", "pi", "pip", "no-ucs"):
            out_path = tmp_path / f"cleaned_{variant}.csv"
            code = main(
                [
                    "clean",
                    str(dirty_csv),
                    "--output",
                    str(out_path),
                    "--variant",
                    variant,
                ]
            )
            assert code == 0, variant
            assert out_path.exists()


class TestModuleEntryPoint:
    def test_python_dash_m_repro(self, dirty_csv, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        # The pytest-ini pythonpath does not reach subprocesses: export
        # src explicitly so the test passes without a PYTHONPATH prefix.
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out_path = tmp_path / "cleaned.csv"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "clean",
                str(dirty_csv),
                "--output",
                str(out_path),
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert out_path.exists()


class TestNetworkRoundTripWorkflow:
    def test_save_then_reuse_network(self, dirty_csv, tmp_path, capsys):
        """network --save, then clean --network: the §7.3.2 loop."""
        net_path = tmp_path / "net.json"
        assert main(["network", str(dirty_csv), "--save", str(net_path)]) == 0
        assert net_path.exists()
        capsys.readouterr()

        out_path = tmp_path / "cleaned.csv"
        code = main(
            [
                "clean",
                str(dirty_csv),
                "--output",
                str(out_path),
                "--network",
                str(net_path),
            ]
        )
        assert code == 0
        assert out_path.exists()

    def test_hand_edited_network_is_accepted(self, dirty_csv, tmp_path):
        """The saved JSON can be edited (here: rebuilt by hand) and used."""
        import json

        net_path = tmp_path / "edited.json"
        net_path.write_text(
            json.dumps(
                {
                    "version": 1,
                    "nodes": ["code", "name"],
                    "edges": [{"from": "code", "to": "name", "weight": 1.0}],
                }
            )
        )
        out_path = tmp_path / "cleaned.csv"
        code = main(
            [
                "clean",
                str(dirty_csv),
                "--output",
                str(out_path),
                "--network",
                str(net_path),
            ]
        )
        assert code == 0


class TestServeCommand:
    def test_serve_fits_then_reloads_and_cleans(
        self, dirty_csv, tmp_path, capsys
    ):
        """First run fits into the registry and serves the requests;
        second run reloads the saved model and repairs identically."""
        table = read_csv(dirty_csv)
        req = tmp_path / "req.csv"
        write_csv(table.slice_rows(0, 20), req)
        args = [
            "serve",
            str(dirty_csv),
            "--registry",
            str(tmp_path / "models"),
            "--request",
            str(req),
            "--out-dir",
            str(tmp_path / "out"),
            "--induce-ucs",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "fitted and saved" in out
        assert "served 1 requests" in out
        first = (tmp_path / "out" / "req.csv").read_text(encoding="utf-8")

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "loaded from" in out
        second = (tmp_path / "out" / "req.csv").read_text(encoding="utf-8")
        assert second == first  # reloaded model: byte-identical output

    def test_serve_registry_only(self, dirty_csv, tmp_path, capsys):
        """No --request: serve just materialises the registry model."""
        assert (
            main(
                [
                    "serve",
                    str(dirty_csv),
                    "--registry",
                    str(tmp_path / "models"),
                ]
            )
            == 0
        )
        assert "model fitted and saved" in capsys.readouterr().out
        assert (tmp_path / "models").is_dir()
