"""The staged streaming pipeline must be invisible in the results.

Chunked cleaning (every chunk size, every backend, fitted and foreign
tables alike) must produce repairs byte-identical to the whole-table
run; chunk-*boundary placement* must be irrelevant too (property test);
the shared-memory snapshot transport must round-trip exactly and
degrade to pickle without changing results; and ``executor="auto"``
must resolve from the planner's cost estimate.  The chunked CSV reader
and the out-of-core ``clean_csv`` driver get unit coverage of their
own.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BCleanConfig, InferenceMode
from repro.core.engine import BClean, clean_table
from repro.core.repairs import CleaningStats, Repair
from repro.data.benchmark import load_benchmark
from repro.dataset.io import (
    iter_csv_chunks,
    read_csv,
    read_csv_text,
    to_csv_text,
    write_csv,
)
from repro.errors import CleaningError, CSVFormatError
from repro.exec import (
    AUTO_CLEAN_COST_THRESHOLD,
    RowChunk,
    StreamDriver,
    TableSink,
    concat_chunk_repairs,
    resolve_executor,
)
from repro.exec import shm as shm_transport
from repro.exec.backends import ProcessBackend

pytestmark = pytest.mark.fast

CHUNK_SIZES = (1, 7, 100)  # single-row, prime, > n_rows


def _sig(result):
    """The full, exact repair signature (no tolerance — byte identity)."""
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


@pytest.fixture(scope="module")
def hospital():
    return load_benchmark("hospital", n_rows=60, seed=0)


@pytest.fixture(scope="module")
def engine(hospital):
    eng = BClean(BCleanConfig.pip(), hospital.constraints)
    eng.fit(hospital.dirty)
    return eng


@pytest.fixture(scope="module")
def reference(engine):
    """The whole-table serial clean every chunked run is pinned against."""
    return engine.clean()


@pytest.fixture(scope="module")
def foreign(hospital):
    """A foreign table with unseen values (plain, NULL, and null-like)."""
    table = hospital.dirty.copy()
    names = table.schema.names
    table.set_cell(3, names[1], "UNSEEN-VALUE-A")
    table.set_cell(9, names[1], "UNSEEN-VALUE-B")
    table.set_cell(5, names[2], None)
    table.set_cell(7, names[0], "null")
    return table


def _chunked_clean(engine, chunk_rows, table=None, executor="serial", n_jobs=2):
    config = engine.config
    saved = (config.chunk_rows, config.executor, config.n_jobs)
    config.chunk_rows, config.executor, config.n_jobs = chunk_rows, executor, n_jobs
    try:
        return engine.clean(table)
    finally:
        config.chunk_rows, config.executor, config.n_jobs = saved


# -- chunked-vs-whole byte identity --------------------------------------------


@pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
def test_chunked_fitted_byte_identical(engine, reference, chunk_rows):
    result = _chunked_clean(engine, chunk_rows)
    assert _sig(result) == _sig(reference)
    assert result.cleaned == reference.cleaned
    # cells counters are chunk-invariant (only effort counters may grow)
    assert result.stats.cells_total == reference.stats.cells_total
    assert result.stats.cells_inspected == reference.stats.cells_inspected
    assert (
        result.stats.cells_skipped_pruning
        == reference.stats.cells_skipped_pruning
    )
    stream = result.diagnostics["stream"]
    assert stream["chunk_rows"] == chunk_rows
    assert stream["n_chunks"] == -(-60 // chunk_rows)


@pytest.mark.parametrize("executor", ("thread", "process"))
def test_chunked_parallel_backends_byte_identical(engine, reference, executor):
    result = _chunked_clean(engine, 25, executor=executor)
    assert _sig(result) == _sig(reference)
    assert result.cleaned == reference.cleaned
    assert result.diagnostics["stream"]["n_chunks"] == 3


@pytest.mark.slow
@pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
@pytest.mark.parametrize("executor", ("thread", "process"))
def test_chunked_backend_matrix_byte_identical(
    engine, reference, chunk_rows, executor
):
    result = _chunked_clean(engine, chunk_rows, executor=executor)
    assert _sig(result) == _sig(reference)
    assert result.cleaned == reference.cleaned


@pytest.mark.parametrize("chunk_rows", CHUNK_SIZES)
def test_chunked_foreign_byte_identical(engine, foreign, chunk_rows):
    whole = engine.clean(foreign)
    assert whole.diagnostics["exec"]["incremental_encoding"] is True
    result = _chunked_clean(engine, chunk_rows, table=foreign)
    assert _sig(result) == _sig(whole)
    assert result.cleaned == whole.cleaned


@pytest.mark.parametrize("executor", ("thread", "process"))
def test_chunked_foreign_parallel_backends(engine, foreign, executor):
    whole = engine.clean(foreign)
    result = _chunked_clean(engine, 7, table=foreign, executor=executor)
    assert _sig(result) == _sig(whole)
    assert result.cleaned == whole.cleaned


@pytest.mark.parametrize("mode_config", (BCleanConfig.pi, BCleanConfig.basic))
def test_chunked_other_modes_byte_identical(hospital, mode_config):
    eng = BClean(mode_config(), hospital.constraints)
    eng.fit(hospital.dirty)
    whole = eng.clean()
    result = _chunked_clean(eng, 11)
    assert _sig(result) == _sig(whole)
    assert result.cleaned == whole.cleaned


# -- chunk-boundary placement property -----------------------------------------


@pytest.fixture(scope="module")
def foreign_whole(engine, foreign):
    return engine.clean(foreign)


@settings(max_examples=20, deadline=None)
@given(cuts=st.sets(st.integers(min_value=1, max_value=59), max_size=8))
def test_chunk_boundary_placement_never_changes_repairs(
    engine, foreign, foreign_whole, cuts
):
    """Arbitrary (not just equal-stride) chunk boundaries are invisible:
    the pipeline's repairs equal the whole-table run for every way of
    cutting the table into consecutive blocks."""
    whole = foreign_whole
    bounds = sorted({0, foreign.n_rows, *cuts})
    chunks = [
        RowChunk(i, start, stop - start, table=foreign.slice_rows(start, stop))
        for i, (start, stop) in enumerate(zip(bounds, bounds[1:]))
    ]
    driver = StreamDriver(engine, engine._columnar_scorer())
    stats = CleaningStats()
    cleaned = foreign.copy()
    repairs = driver.run(iter(chunks), False, stats, TableSink(foreign, cleaned))
    assert [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in repairs
    ] == _sig(whole)
    assert cleaned == whole.cleaned
    assert stats.cells_total == whole.stats.cells_total


# -- chunked CSV reader --------------------------------------------------------


CSV_TEXT = "a,b,num\n" + "\n".join(
    f"a{i % 5},b{i % 3},{i}" for i in range(23)
) + "\n"


@pytest.mark.parametrize("chunk_rows", (1, 7, 23, 1000))
def test_iter_csv_chunks_concatenates_to_read_csv(tmp_path, chunk_rows):
    path = tmp_path / "t.csv"
    path.write_text(CSV_TEXT, encoding="utf-8")
    whole = read_csv(path)
    chunks = list(iter_csv_chunks(path, chunk_rows))
    assert sum(c.n_rows for c in chunks) == whole.n_rows
    assert all(c.schema == whole.schema for c in chunks)
    rows = [row for c in chunks for row in c.to_rows()]
    assert rows == whole.to_rows()
    if chunk_rows < whole.n_rows:
        assert len(chunks) == -(-whole.n_rows // chunk_rows)


def test_iter_csv_chunks_schema_settles_on_first_block(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(CSV_TEXT, encoding="utf-8")
    first = next(iter(iter_csv_chunks(path, 6)))
    inferred_on_first = read_csv_text(
        "\n".join(CSV_TEXT.splitlines()[:7])
    ).schema
    assert first.schema == inferred_on_first


def test_iter_csv_chunks_explicit_schema_and_errors(tmp_path):
    path = tmp_path / "t.csv"
    path.write_text(CSV_TEXT, encoding="utf-8")
    schema = read_csv(path).schema
    chunks = list(iter_csv_chunks(path, 9, schema=schema))
    assert all(c.schema == schema for c in chunks)
    with pytest.raises(CSVFormatError):
        list(iter_csv_chunks(path, 0))
    bad = tmp_path / "bad.csv"
    bad.write_text("x,y\n1\n", encoding="utf-8")
    with pytest.raises(CSVFormatError):
        list(iter_csv_chunks(bad, 4))
    empty = tmp_path / "empty.csv"
    empty.write_text("", encoding="utf-8")
    with pytest.raises(CSVFormatError):
        list(iter_csv_chunks(empty, 4))


def test_read_csv_streams_identically(tmp_path):
    """The handle-streaming reader is cell-for-cell the old behaviour."""
    path = tmp_path / "t.csv"
    path.write_text(CSV_TEXT, encoding="utf-8")
    table = read_csv(path)
    assert read_csv_text(CSV_TEXT) == table
    assert to_csv_text(table) == CSV_TEXT


# -- out-of-core clean_csv -----------------------------------------------------


def test_clean_csv_matches_whole_table_clean(engine, foreign, tmp_path):
    src = tmp_path / "dirty.csv"
    dst = tmp_path / "clean.csv"
    write_csv(foreign, src)
    loaded = read_csv(src, schema=foreign.schema)
    whole = engine.clean(loaded)
    result = _chunked_clean_csv(engine, src, dst, chunk_rows=13)
    assert _sig(result) == _sig(whole)
    assert result.cleaned is None
    assert read_csv(dst, schema=foreign.schema) == whole.cleaned
    stream = result.diagnostics["stream"]
    assert stream["n_chunks"] == 5
    assert result.stats.cells_total == whole.stats.cells_total


def _chunked_clean_csv(engine, src, dst, chunk_rows):
    saved = engine.config.chunk_rows
    engine.config.chunk_rows = chunk_rows
    try:
        return engine.clean_csv(src, dst)
    finally:
        engine.config.chunk_rows = saved


def test_clean_csv_requires_fit_and_columnar(hospital, tmp_path):
    eng = BClean(BCleanConfig.pip(), hospital.constraints)
    with pytest.raises(CleaningError):
        eng.clean_csv(tmp_path / "in.csv", tmp_path / "out.csv")
    eng = BClean(
        BCleanConfig.pip(use_columnar=False), hospital.constraints
    )
    eng.fit(hospital.dirty)
    with pytest.raises(CleaningError):
        eng.clean_csv(tmp_path / "in.csv", tmp_path / "out.csv")


def test_concat_chunk_repairs_verifies_order():
    a = Repair(0, "x", "a", "b")
    b = Repair(5, "x", "a", "b")
    assert concat_chunk_repairs([[a], [b]]) == [a, b]
    with pytest.raises(CleaningError):
        concat_chunk_repairs([[b], [a]])


# -- shared-memory snapshots ---------------------------------------------------


class TestShmTransport:
    def test_round_trip_exact(self):
        obj = {
            "ints": np.arange(1000, dtype=np.int64),
            "floats": np.linspace(-1, 1, 257),
            "nested": {"mask": np.array([True, False, True])},
            "scalars": ("text", 42, 3.5, None),
        }
        packed = shm_transport.pack(obj)
        if packed is None:
            pytest.skip("no shared memory on this host")
        try:
            assert packed.array_bytes >= 8000 + 257 * 8 + 3
            loaded, segment = shm_transport.unpack(packed.shell)
            assert loaded["scalars"] == obj["scalars"]
            np.testing.assert_array_equal(loaded["ints"], obj["ints"])
            np.testing.assert_array_equal(loaded["floats"], obj["floats"])
            np.testing.assert_array_equal(
                loaded["nested"]["mask"], obj["nested"]["mask"]
            )
            del loaded
            segment.close()
        finally:
            packed.release()
            packed.release()  # idempotent

    def test_pure_scalar_payload_falls_back(self):
        assert shm_transport.pack({"no": "arrays", "here": 1}) is None

    def test_shell_is_small_relative_to_arrays(self):
        obj = {"big": np.zeros(1_000_000, dtype=np.float64)}
        packed = shm_transport.pack(obj)
        if packed is None:
            pytest.skip("no shared memory on this host")
        try:
            assert packed.array_bytes >= 8_000_000
            assert len(packed.shell.shell) < 100_000
        finally:
            packed.release()


def test_process_pickle_fallback_byte_identical(
    engine, reference, monkeypatch
):
    """With the shm transport disabled the process backend ships the
    classic pickle — and produces the same bytes."""
    monkeypatch.setattr(shm_transport, "pack", lambda obj, min_bytes=0: None)
    result = _chunked_clean(engine, None, executor="process")
    assert _sig(result) == _sig(reference)
    assert "shm" not in result.diagnostics["exec"]


def test_process_shm_byte_identical(engine, reference):
    result = _chunked_clean(engine, None, executor="process")
    assert _sig(result) == _sig(reference)
    diag = result.diagnostics["exec"]
    # shm is best-effort: when the host provides it the diagnostics say so
    if not diag.get("ran_serially") and not diag.get("process_fallback"):
        assert diag.get("shm") is True


def test_process_backend_use_shm_flag(engine):
    backend = ProcessBackend(2, use_shm=False)
    assert backend.use_shm is False
    assert backend.shm_used is False


# -- adaptive executor ---------------------------------------------------------


class TestAutoExecutor:
    def test_resolver_rules(self):
        big = AUTO_CLEAN_COST_THRESHOLD
        assert resolve_executor("serial", big * 10, 99, 8) == "serial"
        assert resolve_executor("thread", 0.0, 1, 1) == "thread"
        assert resolve_executor("auto", big, 8, 4) == "process"
        assert resolve_executor("auto", big - 1, 8, 4) == "serial"
        assert resolve_executor("auto", big * 10, 1, 4) == "serial"
        assert resolve_executor("auto", big * 10, 8, 1) == "serial"
        assert resolve_executor("auto", 10.0, 8, 4, threshold=5.0) == "process"

    def test_tiny_table_resolves_serial(self, engine, reference):
        result = _chunked_clean(engine, None, executor="auto", n_jobs=4)
        assert result.diagnostics["exec"]["resolved"] == "serial"
        assert _sig(result) == _sig(reference)

    @pytest.mark.parametrize("chunk_rows", (7, 25))
    def test_chunked_auto_reports_resolved(self, engine, reference, chunk_rows):
        """Regression: chunked auto streams must report the sticky
        resolved backend too — it used to appear only when n_chunks == 1."""
        result = _chunked_clean(engine, chunk_rows, executor="auto", n_jobs=4)
        diag = result.diagnostics["exec"]
        assert diag["executor"] == "auto"
        assert "resolved" in diag
        assert diag["resolved"] in result.diagnostics["stream"]["backends"]
        assert _sig(result) == _sig(reference)

    def test_auto_fit_executor_serial_on_tiny_table(self, hospital):
        serial = BClean(BCleanConfig.pip(), hospital.constraints)
        serial.fit(hospital.dirty)
        auto = BClean(
            BCleanConfig.pip(fit_executor="auto", n_jobs=4),
            hospital.constraints,
        )
        auto.fit(hospital.dirty)
        result = auto.clean()
        fit_diag = result.diagnostics["fit_exec"]
        assert fit_diag["fit_executor"] == "serial"
        assert fit_diag["auto"] is True
        assert _sig(result) == _sig(serial.clean())


# -- convenience wrapper forwarding --------------------------------------------


class TestCleanTableKnobs:
    def test_overrides_without_config(self, hospital):
        result = clean_table(
            hospital.dirty,
            constraints=hospital.constraints,
            chunk_rows=16,
            executor="auto",
        )
        assert result.diagnostics["stream"]["n_chunks"] == 4
        assert result.diagnostics["stream"]["chunk_rows"] == 16

    def test_overrides_on_existing_config(self, hospital, reference):
        result = clean_table(
            hospital.dirty,
            BCleanConfig.pip(),
            hospital.constraints,
            chunk_rows=25,
        )
        assert _sig(result) == _sig(reference)
        assert result.diagnostics["stream"]["n_chunks"] == 3

    def test_bad_override_rejected(self, hospital):
        with pytest.raises(CleaningError):
            clean_table(hospital.dirty, chunk_rows=0)

    def test_mode_still_selectable(self, hospital):
        result = clean_table(
            hospital.dirty,
            constraints=hospital.constraints,
            mode=InferenceMode.PARTITIONED,
        )
        assert result.diagnostics["mode"] == "pi"
