"""Tests for the ``python -m repro.experiments`` CLI."""

import pytest

from repro.experiments.__main__ import DRIVERS, main, parse_sizes


class TestParseSizes:
    def test_none(self):
        assert parse_sizes(None) is None
        assert parse_sizes("") is None

    def test_single(self):
        assert parse_sizes("hospital=500") == {"hospital": 500}

    def test_multiple_with_spaces(self):
        assert parse_sizes("hospital=500, flights=600") == {
            "hospital": 500,
            "flights": 600,
        }

    def test_bad_entry(self):
        with pytest.raises(SystemExit):
            parse_sizes("hospital")


class TestMain:
    def test_table2_runs(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "=== table2 ===" in out
        assert "hospital" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_driver_registry_complete(self):
        assert {"table2", "table4", "table5", "table6", "table7",
                "params", "figure4", "figure5", "interaction",
                "ablations", "scaling"} == set(DRIVERS)
