"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dataset.schema import Schema
from repro.dataset.table import Table


@pytest.fixture
def customer_schema() -> Schema:
    """A small schema modelled on the paper's Table 1."""
    return Schema.of(
        "Name:text",
        "City:categorical",
        "State:categorical",
        "ZipCode:categorical",
    )


@pytest.fixture
def customer_table(customer_schema: Schema) -> Table:
    """A tiny, clean customer table with a ZipCode → City/State FD."""
    rows = [
        ["Johnny.R", "sylacauga", "CA", "35150"],
        ["Johnny.R", "sylacauga", "CA", "35150"],
        ["Johnny.R", "sylacauga", "CA", "35150"],
        ["Henry.P", "centre", "KT", "35960"],
        ["Henry.P", "centre", "KT", "35960"],
        ["Henry.P", "centre", "KT", "35960"],
        ["Mary.S", "newyork", "NY", "10001"],
        ["Mary.S", "newyork", "NY", "10001"],
    ]
    return Table.from_rows(customer_schema, rows)


@pytest.fixture
def dirty_customer_table(customer_table: Table) -> Table:
    """The customer table with three hand-planted errors."""
    dirty = customer_table.copy()
    dirty.set_cell(1, "State", "KT")       # inconsistency (zip says CA)
    dirty.set_cell(3, "City", "cenre")     # typo
    dirty.set_cell(6, "ZipCode", None)     # missing value
    return dirty


@pytest.fixture
def fd_table() -> Table:
    """A 200-row table with an exact FD key → value (+ a noise column)."""
    import random

    rng = random.Random(42)
    schema = Schema.of("key:categorical", "value:categorical", "noise:text")
    mapping = {f"k{i}": f"v{i}" for i in range(10)}
    rows = []
    for _ in range(200):
        k = rng.choice(list(mapping))
        rows.append([k, mapping[k], f"n{rng.randrange(1000)}"])
    return Table.from_rows(schema, rows)
