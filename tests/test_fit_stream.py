"""Streaming out-of-core fit: byte-identity, properties, incremental refit.

The streamed fit (``fit(chunk_rows=...)`` / ``fit_csv``) folds row
blocks into mergeable :class:`~repro.exec.fit_stream.SuffStats` and must
reproduce the whole-table fit **bit for bit**: the same vocabularies,
the same DAG, the same CPT dict state (values *and* insertion order),
and therefore the same repairs — at every chunk size and boundary
placement, for streams with NULLs and values first seen mid-stream.
The incremental half rides the same accumulator: ``fit(A + B)`` must
equal ``fit(A)`` followed by ``fit_update(B)``.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.bayesnet.model import DiscreteBayesNet
from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.data.errors import ErrorInjector
from repro.dataset.io import read_csv, write_csv
from repro.dataset.schema import Schema
from repro.dataset.table import Table, cell_key
from repro.errors import CleaningError, SchemaError
from repro.exec import AUTO_FIT_COST_THRESHOLD, SuffStats
from repro.exec.fit_stream import (
    estimate_stream_fit_cost,
    iter_table_chunks,
    suffstats_from_csv,
    suffstats_from_table,
    weighted_marginal_counts,
)
from repro.exec.planner import extrapolate_stream_cost
from repro.serve.registry import ModelRegistry

pytestmark = pytest.mark.fast


# -- fixtures / helpers --------------------------------------------------------


def build_dirty_table(seed: int = 0, n_rows: int = 160) -> Table:
    """An FD-structured table with planted errors — enough signal for a
    non-trivial DAG, small enough to fit at every chunk size quickly."""
    rng = random.Random(seed)
    schema = Schema.of(
        "key:categorical", "value:categorical", "extra:categorical"
    )
    mapping = {f"k{i}": f"v{i}" for i in range(6)}
    rows = [
        [k := rng.choice(list(mapping)), mapping[k], rng.choice("pqr")]
        for _ in range(n_rows)
    ]
    clean = Table.from_rows(schema, rows)
    return ErrorInjector(rate=0.12, seed=seed + 1).inject(clean).dirty


def _ordered(d):
    """A dict as an order-sensitive nested structure — ``dict.__eq__``
    ignores insertion order, but the CPT entry walks do not."""
    return [
        (k, _ordered(v) if isinstance(v, dict) else v) for k, v in d.items()
    ]


def assert_same_network(a: DiscreteBayesNet, b: DiscreteBayesNet) -> None:
    """Bit-level network identity: DAG edges, CPT dict state, and the
    first-appearance insertion order of every counts dict."""
    assert sorted(a.dag.edges()) == sorted(b.dag.edges())
    assert set(a.cpts) == set(b.cpts)
    for node in a.cpts:
        ca, cb = a.cpts[node], b.cpts[node]
        assert ca.parent_names == cb.parent_names
        assert ca._n == cb._n
        assert _ordered(ca._marginal) == _ordered(cb._marginal)
        assert _ordered(ca._config_totals) == _ordered(cb._config_totals)
        assert _ordered(ca._config_counts) == _ordered(cb._config_counts)


def repair_tuples(result):
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


# -- whole-table vs chunked identity -------------------------------------------


class TestChunkedFitIdentity:
    @pytest.fixture(scope="class")
    def dirty(self):
        return build_dirty_table()

    @pytest.fixture(scope="class")
    def whole(self, dirty):
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        engine.fit(dirty)
        return engine, engine.clean()

    @pytest.mark.parametrize("chunk_rows", [7, 64, 256])
    def test_fit_chunk_rows_identity(self, dirty, whole, chunk_rows):
        base_engine, base = whole
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        engine.fit(dirty, chunk_rows=chunk_rows)
        assert_same_network(base_engine.bn, engine.bn)
        result = engine.clean()
        assert repair_tuples(result) == repair_tuples(base)
        assert result.cleaned == base.cleaned
        stream = engine._fit_diag["stream_fit"]
        assert stream["n_rows"] == dirty.n_rows
        assert stream["n_chunks"] == -(-dirty.n_rows // chunk_rows)

    def test_config_fit_chunk_rows_routes_fit(self, dirty, whole):
        base_engine, base = whole
        engine = BClean(
            BCleanConfig.pi(structure="hillclimb", fit_chunk_rows=32)
        )
        engine.fit(dirty)
        assert "stream_fit" in engine._fit_diag
        assert_same_network(base_engine.bn, engine.bn)
        assert repair_tuples(engine.clean()) == repair_tuples(base)

    @pytest.mark.parametrize("structure", ["mmhc", "chowliu", "pc"])
    def test_every_structure_learner_chunk_identity(self, dirty, structure):
        base = BClean(BCleanConfig.pi(structure=structure))
        base.fit(dirty)
        chunked = BClean(BCleanConfig.pi(structure=structure))
        chunked.fit(dirty, chunk_rows=48)
        assert_same_network(base.bn, chunked.bn)

    def test_merged_composition_rejects_chunked_fit(self, dirty):
        from repro.core.composition import AttributeComposition

        composition = AttributeComposition(dirty.schema.names)
        composition.merge(["key", "value"])
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        with pytest.raises(CleaningError, match="singleton"):
            engine.fit(dirty, chunk_rows=32, composition=composition)


class TestCsvFitIdentity:
    @pytest.fixture(scope="class")
    def csv_case(self, tmp_path_factory):
        dirty = build_dirty_table(seed=5)
        src = tmp_path_factory.mktemp("fitcsv") / "train.csv"
        write_csv(dirty, src)
        base = BClean(BCleanConfig.pi(structure="hillclimb"))
        base.fit(read_csv(src))
        return dirty, src, base

    @pytest.mark.parametrize("chunk_rows", [256, 1024])
    def test_fit_csv_identity(self, csv_case, tmp_path, chunk_rows):
        dirty, src, base = csv_case
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        engine.fit_csv(src, chunk_rows=chunk_rows)
        assert engine._stream_fitted
        assert_same_network(base.bn, engine.bn)
        # the struct table holds only the distinct signatures
        assert engine.table.n_rows == engine._suffstats.n_distinct
        out_a = tmp_path / f"base_{chunk_rows}.csv"
        out_b = tmp_path / f"stream_{chunk_rows}.csv"
        ra = base.clean_csv(src, out_a)
        rb = engine.clean_csv(src, out_b)
        assert repair_tuples(ra) == repair_tuples(rb)
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_fit_csv_small_chunks_identity(self, csv_case, tmp_path):
        dirty, src, base = csv_case
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        engine.fit_csv(src, chunk_rows=13)
        assert_same_network(base.bn, engine.bn)

    def test_streamed_fdx_needs_reservoir(self, csv_case):
        _, src, _ = csv_case
        engine = BClean(
            BCleanConfig.pi(structure="fdx", fit_reservoir_rows=0)
        )
        with pytest.raises(CleaningError, match="reservoir"):
            engine.fit_csv(src, chunk_rows=32)


# -- SuffStats properties ------------------------------------------------------


def build_stream_table(seed: int, n_rows: int) -> Table:
    """Random rows over a wide alphabet with NULLs and null-like strings
    mixed in — splitting it anywhere makes later chunks mint codes."""
    rng = random.Random(seed)
    schema = Schema.of("a:categorical", "b:categorical", "c:categorical")
    alphabet = [f"v{i}" for i in range(9)] + [None, "null", ""]
    rows = [[rng.choice(alphabet) for _ in range(3)] for _ in range(n_rows)]
    return Table.from_rows(schema, rows)


def split_at(table: Table, boundaries: list[int]) -> list[Table]:
    cuts = sorted({b for b in boundaries if 0 < b < table.n_rows})
    edges = [0, *cuts, table.n_rows]
    return [
        table.slice_rows(lo, hi) for lo, hi in zip(edges, edges[1:])
    ]


def assert_same_suffstats(a: SuffStats, b: SuffStats) -> None:
    ta, ea, ca, fa = a.finalize()
    tb, eb, cb, fb = b.finalize()
    assert ta == tb
    assert np.array_equal(ca, cb)
    assert np.array_equal(fa, fb)
    assert a.n_rows == b.n_rows
    for name in ta.schema.names:
        # vocabularies replay code for code, and the struct columns with
        # them
        assert ea.card(name) == eb.card(name)
        assert [
            cell_key(ea.decode(name, c)) for c in range(ea.card(name))
        ] == [cell_key(eb.decode(name, c)) for c in range(eb.card(name))]
        assert np.array_equal(ea.codes(name), eb.codes(name))


suffstats_settings = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestSuffStatsProperties:
    @given(
        seed=st.integers(0, 10_000),
        n_rows=st.integers(1, 60),
        boundaries=st.lists(st.integers(1, 59), max_size=6),
    )
    @suffstats_settings
    def test_chunk_boundary_invariance(self, seed, n_rows, boundaries):
        """Merged chunk statistics equal the single-shot accumulation
        for arbitrary boundary placements — NULLs, null-like strings,
        and mid-stream minted codes included."""
        table = build_stream_table(seed, n_rows)
        one_shot = SuffStats().update(table)
        chunked = SuffStats()
        for chunk in split_at(table, boundaries):
            chunked.update(chunk)
        assert_same_suffstats(one_shot, chunked)
        # bounded reservoir: Algorithm R draws once per row past the
        # cap, so the sample is chunk-boundary invariant too
        small_one = SuffStats(reservoir_rows=10).update(table)
        small_chunked = SuffStats(reservoir_rows=10)
        for chunk in split_at(table, boundaries):
            small_chunked.update(chunk)
        assert small_one.reservoir_table() == small_chunked.reservoir_table()

    @given(seed=st.integers(0, 10_000), n_rows=st.integers(1, 60))
    @suffstats_settings
    def test_weighted_counts_match_bruteforce(self, seed, n_rows):
        """Struct-row multiplicities weight marginals back up to exactly
        the integers a whole-table pass counts."""
        table = build_stream_table(seed, n_rows)
        stats = suffstats_from_table(table, chunk_rows=7)
        struct, senc, row_counts, row_firsts = stats.finalize()
        full = table.encode()
        for name in table.schema.names:
            weighted = weighted_marginal_counts(
                senc.codes(name), senc.card(name), row_counts
            )
            brute = np.bincount(
                full.codes(name), minlength=full.card(name)
            )
            assert np.array_equal(weighted, brute)
        # first-appearance indices are the stream's own
        assert sorted(row_firsts.tolist()) == row_firsts.tolist()
        assert int(row_counts.sum()) == table.n_rows

    @given(
        seed=st.integers(0, 10_000),
        split=st.integers(1, 59),
        boundaries=st.lists(st.integers(1, 59), max_size=4),
    )
    @suffstats_settings
    def test_incremental_update_equals_single_stream(
        self, seed, split, boundaries
    ):
        """``stats(A + B)`` equals ``stats(A)`` then ``update(B)`` —
        the accumulator-level half of the fit_update identity."""
        table = build_stream_table(seed, 60)
        split = min(split, table.n_rows - 1)
        whole = SuffStats()
        for chunk in split_at(table, boundaries):
            whole.update(chunk)
        incremental = SuffStats().update(table.slice_rows(0, split))
        incremental.update(table.slice_rows(split, table.n_rows))
        assert_same_suffstats(whole, incremental)

    def test_update_rejects_schema_mismatch(self):
        stats = SuffStats().update(build_stream_table(0, 5))
        other = Table.from_rows(Schema.of("x:categorical"), [["a"]])
        with pytest.raises(SchemaError):
            stats.update(other)

    def test_finalize_before_update_raises(self):
        with pytest.raises(CleaningError):
            SuffStats().finalize()

    def test_reservoir_exact_flag(self):
        table = build_stream_table(3, 30)
        stats = SuffStats(reservoir_rows=50).update(table)
        assert stats.reservoir_exact
        assert stats.reservoir_table() == table
        capped = SuffStats(reservoir_rows=10).update(table)
        assert not capped.reservoir_exact
        assert capped.reservoir_table().n_rows == 10

    def test_from_finalized_roundtrip(self):
        """Rehydrated statistics (the registry reload) are counting-
        identical and keep accepting updates."""
        table = build_stream_table(11, 50)
        live = suffstats_from_table(table, chunk_rows=16)
        struct, senc, row_counts, row_firsts = live.finalize()
        back = SuffStats.from_finalized(
            struct, senc, row_counts, row_firsts, live.n_rows,
            n_chunks=live.n_chunks,
        )
        assert_same_suffstats(live, back)
        extra = build_stream_table(12, 10)
        assert_same_suffstats(live.update(extra), back.update(extra))

    def test_suffstats_from_csv_matches_table(self, tmp_path):
        table = build_stream_table(21, 40)
        path = tmp_path / "stream.csv"
        write_csv(table, path)
        on_disk = suffstats_from_csv(
            path, chunk_rows=9, schema=table.schema
        )
        # compare against the table as read back from disk (the CSV
        # round-trip normalises NULL-like cells)
        in_memory = suffstats_from_table(
            read_csv(path, schema=table.schema), chunk_rows=9
        )
        assert_same_suffstats(on_disk, in_memory)

    def test_iter_table_chunks_covers_and_rejects(self):
        table = build_stream_table(1, 20)
        chunks = list(iter_table_chunks(table, 7))
        assert [c.n_rows for c in chunks] == [7, 7, 6]
        with pytest.raises(CleaningError):
            list(iter_table_chunks(table, 0))


# -- incremental refit ---------------------------------------------------------


class TestFitUpdate:
    def test_fit_update_identity(self):
        """fit(A + B) == fit(A) + fit_update(B) + refresh_structure()."""
        dirty = build_dirty_table(seed=9, n_rows=180)
        a = dirty.slice_rows(0, 120)
        b = dirty.slice_rows(120, dirty.n_rows)

        whole = BClean(BCleanConfig.pi(structure="hillclimb"))
        whole.fit(dirty, chunk_rows=32)

        grown = BClean(BCleanConfig.pi(structure="hillclimb"))
        grown.fit(a, chunk_rows=32)
        grown.fit_update(b)
        assert grown.structure_stale
        assert grown._suffstats.n_rows == dirty.n_rows
        grown.refresh_structure()
        assert not grown.structure_stale
        assert_same_network(whole.bn, grown.bn)
        # cleaning the same foreign stream repairs identically
        assert repair_tuples(whole.clean(dirty)) == repair_tuples(
            grown.clean(dirty)
        )

    def test_fit_update_keeps_dag_until_refresh(self):
        dirty = build_dirty_table(seed=2)
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        engine.fit(dirty.slice_rows(0, 100), chunk_rows=25)
        edges_before = sorted(engine.dag.edges())
        engine.fit_update(dirty.slice_rows(100, dirty.n_rows))
        assert sorted(engine.dag.edges()) == edges_before

    def test_fit_update_accepts_row_iterables(self):
        dirty = build_dirty_table(seed=4)
        head, tail = dirty.slice_rows(0, 140), dirty.slice_rows(140, 160)
        via_table = BClean(BCleanConfig.pi(structure="hillclimb"))
        via_table.fit(head, chunk_rows=64)
        via_table.fit_update(tail)
        via_rows = BClean(BCleanConfig.pi(structure="hillclimb"))
        via_rows.fit(head, chunk_rows=64)
        via_rows.fit_update(
            [[tail.cell(i, n) for n in tail.schema.names]
             for i in range(tail.n_rows)]
        )
        assert_same_network(via_table.bn, via_rows.bn)

    def test_fit_update_before_fit_raises(self):
        engine = BClean(BCleanConfig.pi())
        with pytest.raises(CleaningError):
            engine.fit_update([["a", "b", "c"]])

    def test_refresh_structure_requires_stream_stats(self):
        dirty = build_dirty_table(seed=6)
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        engine.fit(dirty)  # plain fit keeps no accumulator
        with pytest.raises(CleaningError):
            engine.refresh_structure()


class TestSetNetworkCodedRefit:
    def test_set_network_matches_scalar_oracle(self):
        """The coded ``set_network`` refit equals the scalar
        ``DiscreteBayesNet.fit`` on the same DAG — on the plain path."""
        dirty = build_dirty_table(seed=13)
        engine = BClean(BCleanConfig.pi(structure="hillclimb"))
        engine.fit(dirty)
        dag = engine.dag
        oracle = DiscreteBayesNet.fit(
            engine.table, dag, alpha=engine.config.smoothing_alpha
        )
        engine.set_network(dag)
        assert_same_network(oracle, engine.bn)

    def test_set_network_streamed_matches_whole_table(self, tmp_path):
        """A csv-mode engine's coded refit (weighted struct counts)
        equals the whole-table engine's on the same hand-picked DAG —
        full refit and ``refit_nodes`` subset both."""
        dirty = build_dirty_table(seed=13)
        src = tmp_path / "train.csv"
        write_csv(dirty, src)
        whole = BClean(BCleanConfig.pi(structure="hillclimb"))
        whole.fit(read_csv(src))
        streamed = BClean(BCleanConfig.pi(structure="hillclimb"))
        streamed.fit_csv(src, chunk_rows=32)
        dag = whole.dag
        whole.set_network(dag)
        streamed.set_network(dag)
        assert_same_network(whole.bn, streamed.bn)
        node = dirty.schema.names[0]
        whole.set_network(dag, refit_nodes=[node])
        streamed.set_network(dag, refit_nodes=[node])
        assert_same_network(whole.bn, streamed.bn)


# -- the auto cost model -------------------------------------------------------


class TestAutoFitCostModel:
    def test_cost_shape(self):
        """2 rows-touched per attribute pair per distinct signature,
        extrapolated over the unseen remainder like the clean planner."""
        assert estimate_stream_fit_cost(0, 5) == 0.0
        assert estimate_stream_fit_cost(100, 1) == 0.0
        assert estimate_stream_fit_cost(100, 4) == 2.0 * 100 * 6
        partial = estimate_stream_fit_cost(
            100, 4, rows_seen=500, total_rows=2000
        )
        assert partial == extrapolate_stream_cost(
            2.0 * 100 * 6, 500, 2000
        )
        assert partial == pytest.approx(4 * 2.0 * 100 * 6)

    def test_cost_crosses_threshold_at_scale(self):
        """The two regression directions of the model itself: a small
        fused table stays under the auto threshold, a large stream's
        distinct count pushes past it."""
        small = estimate_stream_fit_cost(200, 3)
        large = estimate_stream_fit_cost(400_000, 4)
        assert small < AUTO_FIT_COST_THRESHOLD
        assert large >= AUTO_FIT_COST_THRESHOLD

    def test_auto_downgrades_small_stream_to_serial(self):
        """Below the threshold the session never pays pool spin-up: the
        precheck resolves ``auto`` to serial before any dispatch."""
        dirty = build_dirty_table(seed=17)
        engine = BClean(
            BCleanConfig.pi(
                structure="hillclimb", fit_executor="auto", n_jobs=2
            )
        )
        engine.fit(dirty, chunk_rows=40)
        diag = engine._fit_diag
        assert diag["auto"] is True
        assert diag["fit_executor"] == "serial"
        assert diag["pools_created"] == 0
        base = BClean(BCleanConfig.pi(structure="hillclimb"))
        base.fit(dirty, chunk_rows=40)
        assert_same_network(base.bn, engine.bn)

    def test_auto_keeps_parallel_past_threshold(self, monkeypatch):
        """Past the threshold the precheck leaves ``auto`` alone and the
        job-level resolution upgrades — repairs stay identical."""
        monkeypatch.setattr(
            "repro.core.engine.AUTO_FIT_COST_THRESHOLD", 0.0
        )
        monkeypatch.setattr("repro.exec.fit.AUTO_FIT_COST_THRESHOLD", 0.0)
        dirty = build_dirty_table(seed=17)
        engine = BClean(
            BCleanConfig.pi(
                structure="hillclimb", fit_executor="auto", n_jobs=2
            )
        )
        engine.fit(dirty, chunk_rows=40)
        diag = engine._fit_diag
        assert diag["auto"] is True
        assert diag["fit_executor"] != "serial"
        base = BClean(BCleanConfig.pi(structure="hillclimb"))
        base.fit(dirty, chunk_rows=40)
        assert_same_network(base.bn, engine.bn)


# -- registry: streamed models -------------------------------------------------


class TestRegistryStreamedModels:
    @pytest.fixture
    def csv_path(self, tmp_path):
        dirty = build_dirty_table(seed=23)
        src = tmp_path / "train.csv"
        write_csv(dirty, src)
        return src

    def test_fit_or_load_csv_roundtrip(self, csv_path, tmp_path):
        import json

        registry = ModelRegistry(tmp_path / "models")
        config = BCleanConfig.pi(structure="hillclimb")
        engine, loaded = registry.fit_or_load_csv(
            csv_path, config=config, chunk_rows=64
        )
        assert not loaded
        assert engine._stream_fitted
        names = engine.table.schema.names
        payload = json.loads(registry.path_for(names).read_text())
        assert payload["stream"]["n_rows"] == 160
        assert (
            len(payload["stream"]["row_counts"])
            == engine._suffstats.n_distinct
        )

        again, loaded = registry.fit_or_load_csv(
            csv_path, config=config, chunk_rows=64
        )
        assert loaded
        assert again._stream_fitted
        assert_same_network(engine.bn, again.bn)
        out_a, out_b = tmp_path / "a.csv", tmp_path / "b.csv"
        ra = engine.clean_csv(csv_path, out_a)
        rb = again.clean_csv(csv_path, out_b)
        assert repair_tuples(ra) == repair_tuples(rb)
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_plain_model_has_no_stream_rider(self, csv_path, tmp_path):
        import json

        registry = ModelRegistry(tmp_path / "models")
        engine, _ = registry.fit_or_load(
            read_csv(csv_path), config=BCleanConfig.pi(structure="hillclimb")
        )
        payload = json.loads(
            registry.path_for(engine.table.schema.names).read_text()
        )
        assert "stream" not in payload

    def test_registry_fit_update_persists_merged_stats(
        self, csv_path, tmp_path
    ):
        registry = ModelRegistry(tmp_path / "models")
        config = BCleanConfig.pi(structure="hillclimb")
        engine, _ = registry.fit_or_load_csv(
            csv_path, config=config, chunk_rows=64
        )
        fresh = build_dirty_table(seed=29, n_rows=40)
        registry.fit_update(engine, fresh)
        reloaded = registry.load(engine.table.schema.names)
        assert reloaded._suffstats.n_rows == 200
        assert_same_network(engine.bn, reloaded.bn)
        out_a, out_b = tmp_path / "a.csv", tmp_path / "b.csv"
        ra = engine.clean_csv(csv_path, out_a)
        rb = reloaded.clean_csv(csv_path, out_b)
        assert repair_tuples(ra) == repair_tuples(rb)
        assert out_a.read_bytes() == out_b.read_bytes()


# -- CI smoke: traced chunked streaming fit end to end -------------------------


def test_traced_streaming_fit_smoke(tmp_path):
    """Chunked CSV fit at two chunk sizes, DAG + repair identity vs the
    whole-table fit, with fit.stream spans validating against the event
    schema; writes the trace to $FIT_TRACE_OUT when set so CI can
    validate and archive it."""
    import json
    import os
    from pathlib import Path

    from repro.obs import validate_chrome_trace

    dirty = build_dirty_table(seed=13)
    src = tmp_path / "train.csv"
    write_csv(dirty, src)
    base = BClean(BCleanConfig.pi(structure="hillclimb"))
    base.fit(read_csv(src))
    base_out = tmp_path / "cleaned_base.csv"
    base_repairs = repair_tuples(base.clean_csv(src, base_out))

    out = os.environ.get("FIT_TRACE_OUT")
    trace_path = Path(out) if out else tmp_path / "fit-stream-trace.json"
    for chunk_rows in (32, 64):
        engine = BClean(
            BCleanConfig.pi(structure="hillclimb", profile=True)
        )
        engine.fit_csv(src, chunk_rows=chunk_rows)
        assert_same_network(base.bn, engine.bn)
        dst = tmp_path / f"cleaned_{chunk_rows}.csv"
        assert repair_tuples(engine.clean_csv(src, dst)) == base_repairs
        assert dst.read_bytes() == base_out.read_bytes()
        engine._obs.write(trace_path)
        payload = json.loads(trace_path.read_text())
        assert validate_chrome_trace(payload) == []
        names = [e.get("name") for e in payload["traceEvents"]]
        assert "fit.stream" in names
        assert names.count("fit.stream.chunk") == -(-dirty.n_rows // chunk_rows)
