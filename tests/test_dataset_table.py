"""Tests for repro.dataset.table."""

import pytest

from repro.dataset.schema import AttrType, Schema
from repro.dataset.table import (
    Table,
    coerce_column,
    infer_attr_type,
    infer_schema,
    is_null,
)
from repro.errors import SchemaError


class TestIsNull:
    @pytest.mark.parametrize(
        "value", [None, "", "  ", "NULL", "null", "nan", "None", float("nan")]
    )
    def test_null_values(self, value):
        assert is_null(value)

    @pytest.mark.parametrize("value", [0, 0.0, "0", "a", False, "Nullable"])
    def test_non_null_values(self, value):
        assert not is_null(value)


class TestTableConstruction:
    def test_from_rows(self, customer_schema):
        t = Table.from_rows(customer_schema, [["a", "b", "c", "d"]])
        assert t.n_rows == 1
        assert t.n_cols == 4
        assert t.n_cells == 4

    def test_from_rows_width_mismatch(self, customer_schema):
        with pytest.raises(SchemaError):
            Table.from_rows(customer_schema, [["a", "b"]])

    def test_from_dicts_fills_missing_with_null(self):
        s = Schema.of("a", "b")
        t = Table.from_dicts(s, [{"a": "x"}])
        assert t.cell(0, "b") is None

    def test_from_dicts_unknown_key_rejected(self):
        s = Schema.of("a")
        with pytest.raises(SchemaError):
            Table.from_dicts(s, [{"z": 1}])

    def test_ragged_columns_rejected(self):
        s = Schema.of("a", "b")
        with pytest.raises(SchemaError):
            Table(s, [["x"], []])

    def test_empty(self):
        t = Table.empty(Schema.of("a", "b"))
        assert t.n_rows == 0
        assert t.n_cols == 2


class TestTableAccess:
    def test_cell_by_name_and_index(self, customer_table):
        assert customer_table.cell(0, "Name") == "Johnny.R"
        assert customer_table.cell(0, 0) == "Johnny.R"

    def test_set_cell(self, customer_table):
        customer_table.set_cell(0, "City", "boston")
        assert customer_table.cell(0, "City") == "boston"

    def test_row_view(self, customer_table):
        row = customer_table.row(3)
        assert row["Name"] == "Henry.P"
        assert row[0] == "Henry.P"
        assert row.index == 3
        assert len(row) == 4

    def test_row_out_of_range(self, customer_table):
        with pytest.raises(IndexError):
            customer_table.row(99)

    def test_row_as_dict(self, customer_table):
        d = customer_table.row(0).as_dict()
        assert d["ZipCode"] == "35150"

    def test_iter_cells_count(self, customer_table):
        cells = list(customer_table.iter_cells())
        assert len(cells) == customer_table.n_cells


class TestTableDerivation:
    def test_copy_is_independent(self, customer_table):
        c = customer_table.copy()
        c.set_cell(0, "City", "changed")
        assert customer_table.cell(0, "City") != "changed"

    def test_project(self, customer_table):
        p = customer_table.project(["City", "Name"])
        assert p.schema.names == ["City", "Name"]
        assert p.cell(0, "City") == "sylacauga"

    def test_head(self, customer_table):
        assert customer_table.head(3).n_rows == 3

    def test_select(self, customer_table):
        sel = customer_table.select(lambda r: r["Name"] == "Henry.P")
        assert sel.n_rows == 3

    def test_take_preserves_order(self, customer_table):
        t = customer_table.take([5, 0])
        assert t.cell(0, "Name") == "Henry.P"
        assert t.cell(1, "Name") == "Johnny.R"

    def test_sample_deterministic(self, customer_table):
        a = customer_table.sample(4, seed=1)
        b = customer_table.sample(4, seed=1)
        assert a == b
        assert a.n_rows == 4

    def test_sample_larger_than_table(self, customer_table):
        assert customer_table.sample(100, seed=1).n_rows == customer_table.n_rows

    def test_argsort_by_puts_nulls_last(self, customer_table):
        customer_table.set_cell(0, "City", None)
        order = customer_table.argsort_by("City")
        assert order[-1] == 0

    def test_equality(self, customer_table):
        assert customer_table == customer_table.copy()
        other = customer_table.copy()
        other.set_cell(0, "City", "x")
        assert customer_table != other

    def test_pretty_contains_header(self, customer_table):
        text = customer_table.pretty(limit=2)
        assert "Name" in text
        assert "more rows" in text


class TestTypeInference:
    def test_integers(self):
        assert infer_attr_type(["1", "2", "3"]) == AttrType.INTEGER

    def test_floats(self):
        assert infer_attr_type(["1.5", "2", "3.0"]) == AttrType.FLOAT

    def test_categorical_small_vocab(self):
        assert infer_attr_type(["a", "b", "a"] * 10) == AttrType.CATEGORICAL

    def test_text_large_vocab(self):
        values = [f"value-{i}" for i in range(100)]
        assert infer_attr_type(values, categorical_threshold=10) == AttrType.TEXT

    def test_all_null_defaults_to_text(self):
        assert infer_attr_type([None, ""]) == AttrType.TEXT

    def test_coerce_integer_column(self):
        out = coerce_column(["1", "2", None], AttrType.INTEGER)
        assert out == [1, 2, None]

    def test_coerce_keeps_dirty_values_as_strings(self):
        out = coerce_column(["1", "x2"], AttrType.INTEGER)
        assert out == [1, "x2"]

    def test_infer_schema(self):
        s = infer_schema(["a", "b"], [["1", "x"], ["2", "y"]])
        assert s.type_of("a") == AttrType.INTEGER
