"""Tests for BN partitioning (§6.1) and the pruning strategies (§6.2)."""

import pytest

from repro.bayesnet.dag import DAG
from repro.core.cooccurrence import CooccurrenceIndex
from repro.core.partition import partition, partition_statistics
from repro.core.pruning import (
    DomainPruner,
    should_skip_cell,
    tuple_filter_score,
)


@pytest.fixture
def diamond() -> DAG:
    """a → b → d, a → c → d plus an isolated node e."""
    g = DAG(["a", "b", "c", "d", "e"])
    g.add_edge("a", "b")
    g.add_edge("a", "c")
    g.add_edge("b", "d")
    g.add_edge("c", "d")
    return g


class TestPartition:
    def test_joint_is_parents_node_children(self, diamond):
        subnets = partition(diamond)
        sn = subnets["b"]
        assert set(sn.joint) == {"a", "b", "d"}
        assert sn.parents == ("a",)
        assert sn.children == ("d",)

    def test_coparents_included_in_blanket(self, diamond):
        sn = partition(diamond)["b"]
        # b's child d has co-parent c.
        assert "c" in sn.blanket
        assert set(sn.blanket) == {"a", "d", "c"}

    def test_isolated_node(self, diamond):
        sn = partition(diamond)["e"]
        assert sn.is_isolated
        assert sn.joint == ("e",)
        assert sn.size == 1

    def test_every_node_has_a_subnet(self, diamond):
        assert set(partition(diamond)) == set(diamond.nodes)

    def test_statistics(self, diamond):
        stats = partition_statistics(partition(diamond))
        assert stats["n_nodes"] == 5
        assert stats["n_isolated"] == 1
        assert stats["max_size"] >= 3

    def test_statistics_empty(self):
        assert partition_statistics({})["n_nodes"] == 0


class TestTuplePruning:
    def test_consistent_cell_scores_high(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        row = customer_table.row(0).as_dict()
        score = tuple_filter_score(idx, row, "State")
        assert score > 0.5

    def test_inconsistent_cell_scores_low(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        row = dict(customer_table.row(0).as_dict(), State="KT")
        score = tuple_filter_score(idx, row, "State")
        assert score < 0.3

    def test_should_skip_threshold(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        clean_row = customer_table.row(0).as_dict()
        dirty_row = dict(clean_row, State="KT")
        assert should_skip_cell(idx, clean_row, "State", tau_clean=0.5)
        assert not should_skip_cell(idx, dirty_row, "State", tau_clean=0.5)

    def test_filter_bounds(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        for row in customer_table.rows():
            for attr in customer_table.schema.names:
                score = tuple_filter_score(idx, row.as_dict(), attr)
                assert 0.0 <= score <= 1.0


class TestDomainPruning:
    def test_contextual_value_ranks_first(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        pruner = DomainPruner(idx, top_k=1)
        row = customer_table.row(0).as_dict()
        kept = pruner.prune(
            ["CA", "KT", "NY"], row, "State", ["ZipCode", "City"]
        )
        assert kept[0] == "CA"
        assert len(kept) == 1

    def test_keep_preserves_incumbent(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        pruner = DomainPruner(idx, top_k=1)
        row = customer_table.row(0).as_dict()
        kept = pruner.prune(
            ["CA", "KT", "NY"], row, "State", ["ZipCode"], keep=["NY"]
        )
        assert "NY" in kept

    def test_tfidf_zero_without_context(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        pruner = DomainPruner(idx)
        row = customer_table.row(0).as_dict()
        assert pruner.tfidf("KT", row, "State", ["ZipCode", "City"]) == 0.0

    def test_tfidf_positive_with_context(self, customer_table):
        idx = CooccurrenceIndex(customer_table)
        pruner = DomainPruner(idx)
        row = customer_table.row(0).as_dict()
        assert pruner.tfidf("CA", row, "State", ["ZipCode", "City"]) > 0.0
