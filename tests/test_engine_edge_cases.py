"""Edge-case and failure-injection tests for the cleaning engine.

The engine must degrade gracefully on pathological inputs — constant
columns, all-NULL columns, single rows, two-column tables — and its
per-cell result cache must be transparent: identical rows must receive
identical decisions, and structure edits must invalidate the cache.
"""

import random

import pytest

from repro.bayesnet.dag import DAG
from repro.constraints.builtin import NotNull
from repro.constraints.registry import UCRegistry
from repro.core.config import BCleanConfig
from repro.core.engine import BClean, clean_table
from repro.dataset.diff import cells_equal
from repro.dataset.schema import Schema
from repro.dataset.table import Table


def fd_table(n_rows=100, n_keys=5, seed=0):
    rng = random.Random(seed)
    schema = Schema.of("key:categorical", "value:categorical")
    mapping = {f"k{i}": f"v{i}" for i in range(n_keys)}
    rows = [[k, mapping[k]] for k in (rng.choice(list(mapping)) for _ in range(n_rows))]
    return Table.from_rows(schema, rows)


class TestPathologicalTables:
    def test_single_row_table(self):
        table = Table.from_rows(
            Schema.of("a:categorical", "b:categorical"), [["x", "y"]]
        )
        result = clean_table(table, BCleanConfig.pi())
        assert result.cleaned == table  # nothing else to prefer

    def test_constant_column_untouched(self):
        schema = Schema.of("const:categorical", "var:categorical")
        rows = [["same", f"v{i % 3}"] for i in range(60)]
        table = Table.from_rows(schema, rows)
        result = clean_table(table, BCleanConfig.pi())
        assert all(
            result.cleaned.cell(i, "const") == "same" for i in range(60)
        )

    def test_all_null_column_survives(self):
        schema = Schema.of("a:categorical", "hole:categorical")
        rows = [[f"v{i % 4}", None] for i in range(40)]
        table = Table.from_rows(schema, rows)
        result = clean_table(table, BCleanConfig.pi())
        assert result.cleaned.n_rows == 40
        # with no observed values there is nothing to fill from
        assert all(
            result.cleaned.cell(i, "hole") is None for i in range(40)
        )

    def test_two_identical_columns(self):
        schema = Schema.of("a:categorical", "b:categorical")
        rows = [[f"v{i % 3}", f"v{i % 3}"] for i in range(60)]
        table = Table.from_rows(schema, rows)
        result = clean_table(table, BCleanConfig.pi())
        for i in range(60):
            assert result.cleaned.cell(i, "a") == result.cleaned.cell(i, "b")

    def test_every_mode_on_tiny_table(self):
        table = fd_table(n_rows=10)
        for factory in (BCleanConfig.basic, BCleanConfig.pi, BCleanConfig.pip):
            result = clean_table(table, factory())
            assert result.cleaned.n_rows == 10


class TestCacheTransparency:
    def test_identical_rows_get_identical_decisions(self):
        table = fd_table(n_rows=120, seed=1)
        # corrupt two rows with the *same* (key, value) signature
        table.set_cell(0, "value", "WRONG")
        table.set_cell(1, "value", "WRONG")
        key = table.cell(0, "key")
        table.set_cell(1, "key", key)

        engine = BClean(BCleanConfig.pi())
        engine.fit(table)
        result = engine.clean()
        assert cells_equal(
            result.cleaned.cell(0, "value"), result.cleaned.cell(1, "value")
        )

    def test_cache_hit_counts_in_diagnostics(self):
        table = fd_table(n_rows=200, seed=2)
        engine = BClean(BCleanConfig.pi())
        engine.fit(table)
        result = engine.clean()
        # 200 rows over 5 distinct signatures: the cache must be small
        assert 0 < result.diagnostics["cache_size"] < 200 * 2

    def test_set_network_invalidates_cache(self):
        table = fd_table(n_rows=100, seed=3)
        table.set_cell(0, "value", "WRONG")
        engine = BClean(BCleanConfig.pi())
        engine.fit(table)
        first = engine.clean()
        assert first.diagnostics["cache_size"] > 0

        # replace the structure with an empty DAG: decisions may change,
        # and the stale cache must not survive the edit
        empty = DAG(table.schema.names)
        engine.set_network(empty)
        second = engine.clean()
        assert second.diagnostics["n_edges"] == 0
        assert second.diagnostics["cache_size"] > 0  # rebuilt, not reused

    def test_reclean_same_engine_is_stable(self):
        table = fd_table(n_rows=80, seed=4)
        table.set_cell(5, "value", "WRONG")
        engine = BClean(BCleanConfig.pi())
        engine.fit(table)
        assert engine.clean().cleaned == engine.clean().cleaned


class TestCleanSeparateTable:
    def test_clean_unseen_table_with_fitted_model(self):
        """fit() on one sample, clean() another — the model must apply
        its statistics to fresh rows of the same schema."""
        train = fd_table(n_rows=150, seed=5)
        test = fd_table(n_rows=30, seed=6)
        test.set_cell(0, "value", "WRONG")

        engine = BClean(BCleanConfig.pi())
        engine.fit(train)
        result = engine.clean(test)
        assert result.cleaned.n_rows == 30
        truth = {f"k{i}": f"v{i}" for i in range(5)}
        assert result.cleaned.cell(0, "value") == truth[test.cell(0, "key")]


class TestConstraintInteraction:
    def test_all_candidates_vetoed_keeps_original(self):
        """If UCs reject every candidate (and the incumbent), the cell
        must keep its observed value rather than take a vetoed repair."""
        from repro.constraints.builtin import Pattern

        table = fd_table(n_rows=60, seed=7)
        table.set_cell(0, "value", "WRONG")
        registry = UCRegistry().add("value", Pattern("z+"))  # matches nothing
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(table)
        result = engine.clean()
        assert result.cleaned.cell(0, "value") == "WRONG"

    def test_notnull_on_every_attr_fills_nulls(self):
        table = fd_table(n_rows=100, seed=8)
        table.set_cell(3, "value", None)
        registry = UCRegistry()
        for attr in table.schema.names:
            registry.add(attr, NotNull())
        engine = BClean(BCleanConfig.pi(), registry)
        engine.fit(table)
        result = engine.clean()
        assert result.cleaned.cell(3, "value") is not None
