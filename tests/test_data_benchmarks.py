"""Tests for the benchmark dataset generators and registry."""

import pytest

from repro.data.benchmark import (
    DATASET_NAMES,
    dataset_spec,
    load_benchmark,
    table2_statistics,
)
from repro.dataset.table import is_null
from repro.errors import DatasetError

SMALL = {  # fast sizes for tests
    "hospital": 200,
    "flights": 200,
    "soccer": 300,
    "beers": 200,
    "inpatient": 200,
    "facilities": 200,
}


class TestRegistry:
    def test_all_six_datasets_registered(self):
        assert set(DATASET_NAMES) == {
            "hospital", "flights", "soccer", "beers", "inpatient", "facilities",
        }

    def test_unknown_dataset_rejected(self):
        with pytest.raises(DatasetError):
            dataset_spec("nope")

    def test_case_insensitive(self):
        assert dataset_spec("Hospital").name == "hospital"


@pytest.mark.parametrize("name", DATASET_NAMES)
class TestEveryDataset:
    def test_clean_generation(self, name):
        spec = dataset_spec(name)
        table = spec.generate_clean(SMALL[name], seed=1)
        assert table.n_rows == SMALL[name]
        assert table.n_cols == len(spec.module.schema())
        # clean data has no NULLs
        assert all(
            not is_null(v) for col in table.columns for v in col
        )

    def test_deterministic(self, name):
        spec = dataset_spec(name)
        a = spec.generate_clean(SMALL[name], seed=5)
        b = spec.generate_clean(SMALL[name], seed=5)
        assert a == b
        c = spec.generate_clean(SMALL[name], seed=6)
        assert a != c

    def test_key_fds_hold_on_clean_data(self, name):
        from repro.constraints.fd import FDLookup

        spec = dataset_spec(name)
        table = spec.generate_clean(SMALL[name], seed=2)
        for fd in spec.key_fds():
            lookup = FDLookup(fd, table)
            violations = sum(
                1 for row in table.rows() if lookup.violates(row.as_dict())
            )
            assert violations == 0, f"{fd} violated on clean {name}"

    def test_constraints_hold_on_clean_data(self, name):
        spec = dataset_spec(name)
        table = spec.generate_clean(SMALL[name], seed=3)
        registry = spec.constraints(table)
        assert registry.n_constraints > 0
        for row in table.rows():
            assert registry.violations_in_tuple(row.as_dict()) == 0

    def test_denial_constraints_clean(self, name):
        from repro.constraints.dc import find_violations

        spec = dataset_spec(name)
        table = spec.generate_clean(SMALL[name], seed=4)
        for dc in spec.denial_constraints():
            assert find_violations(table, dc, limit=1) == []

    def test_pclean_program_covers_schema(self, name):
        spec = dataset_spec(name)
        program = spec.pclean_program()
        assert set(program.names) == set(spec.module.schema().names)
        assert program.n_ppl_lines > 10

    def test_load_benchmark_wires_everything(self, name):
        inst = load_benchmark(name, n_rows=SMALL[name], seed=0)
        assert inst.dirty.n_rows == inst.clean.n_rows == SMALL[name]
        assert len(inst.error_cells) > 0
        assert inst.constraints.n_constraints > 0
        # dirty differs from clean exactly at the injected errors
        from repro.dataset.diff import diff_mask

        assert diff_mask(inst.dirty, inst.clean) == inst.error_cells

    def test_noise_rate_override(self, name):
        inst = load_benchmark(name, n_rows=SMALL[name], noise_rate=0.30, seed=0)
        assert inst.injection.noise_rate == pytest.approx(0.30, abs=0.12)


class TestTable2:
    def test_statistics_complete(self):
        rows = table2_statistics(n_rows=150)
        assert len(rows) == 6
        for row in rows:
            assert row["rows"] == 150
            assert row["n_ucs"] > 0
            assert row["n_dcs"] > 0
            assert row["ppl_lines"] > 0


class TestFlightsSpecifics:
    def test_user_network_star(self):
        spec = dataset_spec("flights")
        dag = spec.user_network()
        assert dag is not None
        assert dag.children("flight") == list(
            spec.module.TIME_ATTRS
        )

    def test_time_format_matches_table3_pattern(self):
        import re

        spec = dataset_spec("flights")
        table = spec.generate_clean(100, seed=1)
        pattern = re.compile(spec.module.TIME_PATTERN)
        for attr in spec.module.TIME_ATTRS:
            for v in table.column(attr):
                assert pattern.fullmatch(str(v)), v

    def test_protected_identity_columns(self):
        inst = load_benchmark("flights", n_rows=200, seed=1)
        assert all(
            e.attribute not in ("src", "flight") for e in inst.injection.errors
        )


class TestHospitalSpecifics:
    def test_no_user_network(self):
        assert dataset_spec("hospital").user_network() is None

    def test_state_measure_determines_stateavg(self):
        table = dataset_spec("hospital").generate_clean(300, seed=1)
        seen = {}
        for row in table.rows():
            key = (row["State"], row["MeasureCode"])
            if key in seen:
                assert seen[key] == row["StateAvg"]
            seen[key] = row["StateAvg"]
