"""Smoke tests for the experiment drivers (tiny sizes — the real runs
live in benchmarks/)."""

import pytest

from repro.experiments import (
    ablations,
    figure4,
    figure5,
    interaction,
    param_sweeps,
    table2,
    table4,
    table5,
    table6,
    table7,
)

TINY = {
    "hospital": 200,
    "flights": 240,
    "soccer": 400,
    "beers": 200,
    "inpatient": 200,
    "facilities": 200,
}


class TestTable2:
    def test_rows_and_render(self):
        rows = table2.run(n_rows=120)
        assert len(rows) == 6
        text = table2.render(rows)
        assert "hospital" in text
        assert "noise_rate" in text


class TestTable4:
    def test_single_dataset_matrix(self):
        reports = table4.run(datasets=("hospital",), sizes=TINY)
        systems = {r.system for r in reports}
        assert {"BClean", "BCleanPI", "BCleanPIP", "BClean-UC",
                "PClean", "HoloClean", "Raha+Baran", "Garf"} == systems
        text = table4.render(reports)
        assert "precision" in text and "f1" in text


class TestTable5:
    def test_sampled_soccer(self):
        reports = table5.run(full_rows=400, sample_rows=120)
        assert len(reports) == 4
        assert {r.dataset for r in reports} == {"soccer"}
        assert "Table 5" in table5.render(reports)


class TestTable6:
    def test_type_recall_columns(self):
        reports = table6.run(datasets=("facilities",), sizes=TINY)
        assert all(r.recall_by_type or r.failed for r in reports)
        text = table6.render(reports)
        assert " T " in text or "T" in text


class TestTable7:
    def test_runtime_rows(self):
        reports = table7.run(datasets=("hospital",), sizes=TINY)
        assert all(r.exec_seconds >= 0 for r in reports)
        text = table7.render(reports)
        assert "user_h (paper)" in text
        assert "hospital exec_s" in text

    def test_paper_user_hours_cover_all_systems(self):
        from repro.evaluation.systems import default_systems

        for s in default_systems():
            assert s.name in table7.PAPER_USER_HOURS


class TestParamSweeps:
    def test_lambda_sweep(self):
        rows = param_sweeps.sweep_lambda(values=(0.0, 1.0), n_rows=200)
        assert [r["lambda"] for r in rows] == [0.0, 1.0]
        assert all(0.0 <= r["f1"] <= 1.0 for r in rows)

    def test_beta_sweep(self):
        rows = param_sweeps.sweep_beta(values=(2.0,), n_rows=200)
        assert rows[0]["beta"] == 2.0

    def test_tau_sweep(self):
        rows = param_sweeps.sweep_tau(values=(0.5,), n_rows=200)
        assert rows[0]["tau"] == 0.5


class TestFigure4:
    def test_error_distribution(self):
        rows = figure4.error_distribution(
            datasets=("inpatient",), sizes=TINY
        )
        assert rows[0]["dataset"] == "inpatient"
        assert rows[0]["T"] > 0

    def test_swap_recall_rows(self):
        rows = figure4.swap_error_recall(datasets=("facilities",), sizes=TINY)
        domains = {r["swap_domain"] for r in rows}
        assert domains == {"same", "different"}


class TestFigure5:
    def test_configurations_complete(self):
        rows = figure5.run(datasets=("hospital",), sizes=TINY)
        labels = {r["ucs"] for r in rows}
        assert labels == {"Com", "Max", "Min", "Nul", "Pat", "All"}


class TestInteraction:
    def test_before_after_rows(self):
        rows = interaction.run(datasets=("flights",), sizes=TINY)
        networks = [r["network"] for r in rows]
        assert "auto" in networks
        assert any("adjusted" in n for n in networks)

    def test_no_edit_datasets_reuse_auto(self):
        rows = interaction.run(datasets=("hospital",), sizes=TINY)
        assert rows[1]["network"] == "adjusted (no edit)"
        assert rows[1]["f1"] == rows[0]["f1"]


class TestAblations:
    def test_compensatory(self):
        rows = ablations.compensatory_ablation("hospital", 200)
        assert len(rows) == 2

    def test_structure(self):
        rows = ablations.structure_ablation("hospital", 200)
        assert {r["learner"] for r in rows} == {
            "fdx", "hillclimb", "chowliu", "pc", "mmhc"
        }

    def test_domain_pruning(self):
        rows = ablations.domain_pruning_sweep("hospital", 200, top_ks=(8,))
        assert rows[0]["top_k"] == 8


class TestScaling:
    def test_sweep_rows_and_factors(self):
        from repro.experiments import scaling

        rows = scaling.run(
            dataset="soccer", row_counts=(100, 200), variants=("BCleanPI",)
        )
        assert len(rows) == 2
        assert {r["n_rows"] for r in rows} == {100, 200}
        factors = scaling.slowdown_factors(rows)
        assert factors["BCleanPI"] > 0

    def test_unknown_variant_rejected(self):
        from repro.experiments import scaling

        with pytest.raises(ValueError, match="unknown variants"):
            scaling.run(row_counts=(50,), variants=("Nope",))

    def test_render_mentions_growth(self):
        from repro.experiments import scaling

        rows = scaling.run(
            dataset="soccer", row_counts=(100, 200), variants=("BCleanPIP",)
        )
        text = scaling.render(rows)
        assert "growth factor" in text
        assert "BCleanPIP" in text
