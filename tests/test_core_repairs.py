"""Tests for repair records and cleaning-result plumbing."""

import time

import pytest

from repro.core.repairs import (
    CleaningResult,
    CleaningStats,
    Repair,
    Stopwatch,
    apply_repairs,
    collect_repairs,
)
from repro.dataset.schema import Schema
from repro.dataset.table import Table


@pytest.fixture
def small_table():
    return Table.from_rows(Schema.of("a", "b"), [["1", "x"], ["2", "y"]])


class TestRepair:
    def test_str(self):
        r = Repair(0, "a", "old", "new", -2.0, -1.0)
        text = str(r)
        assert "old" in text and "new" in text and "[0].a" in text


class TestApplyRepairs:
    def test_apply(self, small_table):
        repairs = [Repair(0, "a", "1", "fixed")]
        out = apply_repairs(small_table, repairs)
        assert out.cell(0, "a") == "fixed"
        assert small_table.cell(0, "a") == "1"  # original untouched

    def test_roundtrip_with_collect(self, small_table):
        modified = small_table.copy()
        modified.set_cell(1, "b", "z")
        repairs = collect_repairs(small_table, modified)
        assert len(repairs) == 1
        assert repairs[0].row == 1 and repairs[0].attribute == "b"
        assert apply_repairs(small_table, repairs) == modified

    def test_collect_no_changes(self, small_table):
        assert collect_repairs(small_table, small_table.copy()) == []


class TestCleaningResult:
    def test_repaired_cells(self, small_table):
        result = CleaningResult(
            small_table, [Repair(0, "a", "1", "9"), Repair(1, "b", "y", "z")]
        )
        assert result.n_repairs == 2
        assert result.repaired_cells() == {(0, "a"), (1, "b")}

    def test_stats_total_seconds(self):
        stats = CleaningStats(fit_seconds=1.5, clean_seconds=0.5)
        assert stats.total_seconds == 2.0


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as timer:
            time.sleep(0.01)
        assert timer.seconds >= 0.01
