"""Serving must amortise, never alter.

The resident service answers N concurrent ``submit()`` cleans from one
engine-held warm session: across every request the process pool is
created once, the fit-statistics snapshot ships once, and repeated row
signatures are answered from the session's competition cache — while
each request's :class:`~repro.core.repairs.CleaningResult` stays
byte-identical to a standalone serial ``clean()`` of the same rows.
The model registry extends the contract across processes: save →
reload → serve must reproduce the in-memory engine's repairs exactly,
minted foreign codes included.  On top of the end-to-end matrix: the
micro-batching plumbing units (batch cutting, concatenation, repair
demultiplexing), input forms, and the service/session lifecycle.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.config import BCleanConfig
from repro.core.engine import BClean
from repro.core.repairs import Repair
from repro.data.benchmark import load_benchmark
from repro.dataset.table import Table
from repro.errors import CleaningError
from repro.serve import (
    BCleanService,
    CleanRequest,
    ModelRegistry,
    concat_tables,
    schema_fingerprint,
    split_results,
    take_batch,
)

pytestmark = pytest.mark.fast

N_REQUESTS = 10
ROWS_PER_REQUEST = 6


def _sig(result):
    """The full, exact repair signature (no tolerance — byte identity)."""
    return [
        (r.row, r.attribute, r.old_value, r.new_value, r.old_score, r.new_score)
        for r in result.repairs
    ]


@pytest.fixture(scope="module")
def hospital():
    return load_benchmark("hospital", n_rows=60, seed=0)


@pytest.fixture(scope="module")
def request_tables(hospital):
    """N small request payloads: consecutive slices of the dirty rows
    (together they are exactly the fitted table, so signatures recur
    across rounds)."""
    dirty = hospital.dirty
    return [
        dirty.slice_rows(i * ROWS_PER_REQUEST, (i + 1) * ROWS_PER_REQUEST)
        for i in range(N_REQUESTS)
    ]


@pytest.fixture(scope="module")
def reference_engine(hospital):
    eng = BClean(BCleanConfig.pip(), hospital.constraints)
    eng.fit(hospital.dirty)
    return eng


@pytest.fixture(scope="module")
def reference_results(reference_engine, request_tables):
    """What a standalone serial ``clean()`` of each request returns —
    the pin every served result is compared against."""
    return [reference_engine.clean(t) for t in request_tables]


def _assert_identical(served, references):
    for result, reference in zip(served, references):
        assert _sig(result) == _sig(reference)
        assert result.cleaned == reference.cleaned
        assert result.stats.repairs_made == reference.stats.repairs_made
        assert result.stats.cells_total == reference.stats.cells_total


# -- the serving contract: concurrent submits, byte-identical ------------------


def test_concurrent_submits_byte_identical(
    hospital, request_tables, reference_results
):
    engine = BClean(BCleanConfig.pip(), hospital.constraints)
    engine.fit(hospital.dirty)
    with BCleanService(engine) as service:
        with ThreadPoolExecutor(max_workers=N_REQUESTS) as pool:
            served = list(pool.map(service.submit, request_tables))
        diag = service.diagnostics()
    _assert_identical(served, reference_results)
    assert diag["requests"] == N_REQUESTS
    assert 1 <= diag["batches"] <= N_REQUESTS
    assert diag["rows"] == N_REQUESTS * ROWS_PER_REQUEST
    serve = served[0].diagnostics["serve"]
    assert {"request_id", "batch_id", "batch_requests", "batch_rows"} <= set(
        serve
    )


def test_process_service_one_pool_one_snapshot_cache_hits(
    hospital, request_tables, reference_results
):
    """The acceptance pin: N concurrent process-backend cleans share
    one pool, one snapshot ship, and hit the cache on repeated
    signatures — with every result byte-identical to serial."""
    engine = BClean(
        BCleanConfig.pip(executor="process", n_jobs=2), hospital.constraints
    )
    engine.fit(hospital.dirty)
    with BCleanService(engine) as service:
        with ThreadPoolExecutor(max_workers=N_REQUESTS) as pool:
            round_one = list(pool.map(service.submit, request_tables))
        # same payloads again: every signature recurs -> cache answers
        with ThreadPoolExecutor(max_workers=N_REQUESTS) as pool:
            round_two = list(pool.map(service.submit, request_tables))
        diag = service.diagnostics()
        if diag["flags"].get("process_fallback"):  # pragma: no cover
            pytest.skip("host cannot create process pools")
    _assert_identical(round_one, reference_results)
    _assert_identical(round_two, reference_results)
    assert diag["requests"] == 2 * N_REQUESTS
    assert diag["pools_created"] == 1
    assert diag["snapshot_ships"] == 1
    assert diag["cache_hits"] > 0
    serve = round_two[0].diagnostics["serve"]
    assert serve["pools_created"] == 1
    assert serve["snapshot_ships"] == 1


def test_serve_matches_direct_resident_clean(hospital, request_tables):
    """Submitting through the service equals cleaning the same rows
    directly on an engine with an open resident session."""
    engine = BClean(BCleanConfig.pip(), hospital.constraints)
    engine.fit(hospital.dirty)
    engine.open_session()
    try:
        direct = [engine.clean(t) for t in request_tables]
    finally:
        engine.close_session()
    engine.fit(hospital.dirty)  # fresh fit: fit() closes any session
    with BCleanService(engine) as service:
        served = [service.submit(t) for t in request_tables]
    _assert_identical(served, direct)


# -- registry: save -> reload -> serve -----------------------------------------


def test_registry_fit_or_load_roundtrip(
    hospital, request_tables, reference_results, tmp_path
):
    registry = ModelRegistry(tmp_path / "models")
    config = BCleanConfig.pip()
    engine, loaded = registry.fit_or_load(
        hospital.dirty, config=config, constraints=hospital.constraints
    )
    assert loaded is False
    names = hospital.dirty.schema.names
    assert registry.contains(names)
    assert registry.path_for(names).parent.name == schema_fingerprint(names)

    # a second bootstrap skips the fit and reloads the saved model —
    # and the caller's (scheduling) config must win over the saved one
    reloaded, loaded = registry.fit_or_load(
        hospital.dirty,
        config=BCleanConfig.pip(executor="thread", n_jobs=2),
        constraints=hospital.constraints,
    )
    assert loaded is True
    assert reloaded.config.executor == "thread"
    with BCleanService(reloaded) as service:
        with ThreadPoolExecutor(max_workers=N_REQUESTS) as pool:
            served = list(pool.map(service.submit, request_tables))
    _assert_identical(served, reference_results)


def test_registry_reload_preserves_minted_codes(
    hospital, reference_engine, tmp_path
):
    """Satellite pin: a model saved *after* foreign cleans minted
    unseen codes reloads to byte-identical repairs on that same foreign
    table — the encoding rider replays minted codes exactly."""
    foreign = hospital.dirty.copy()
    names = foreign.schema.names
    foreign.set_cell(3, names[1], "UNSEEN-VALUE-A")
    foreign.set_cell(9, names[1], "UNSEEN-VALUE-B")
    foreign.set_cell(5, names[2], None)

    engine = BClean(BCleanConfig.pip(), hospital.constraints)
    engine.fit(hospital.dirty)
    before = engine.clean(foreign)  # mints codes for the unseen values

    registry = ModelRegistry(tmp_path / "models")
    registry.save(engine)
    reloaded = registry.load(names, constraints=hospital.constraints)
    after = reloaded.clean(foreign)
    assert _sig(after) == _sig(before)
    assert after.cleaned == before.cleaned
    # and the fitted table itself round-tripped cell-for-cell
    assert reloaded.table == engine.table


def test_registry_load_missing_model_raises(tmp_path):
    registry = ModelRegistry(tmp_path / "empty")
    with pytest.raises(CleaningError, match="no registry model"):
        registry.load(["a", "b"])


# -- micro-batching plumbing units ---------------------------------------------


def _requests(sizes, schema, rows):
    out = deque()
    offset = 0
    for i, size in enumerate(sizes):
        out.append(
            CleanRequest(i, Table.from_rows(schema, rows[offset : offset + size]))
        )
        offset += size
    return out


def test_take_batch_cuts_on_max_rows(hospital):
    rows = hospital.dirty.to_rows()
    pending = _requests([4, 4, 4, 4], hospital.dirty.schema, rows)
    batch = take_batch(pending, max_rows=8)
    assert [r.request_id for r in batch] == [0, 1]
    assert [r.request_id for r in pending] == [2, 3]
    # an oversized single request still forms its own batch
    big = _requests([50], hospital.dirty.schema, rows)
    assert [r.request_id for r in take_batch(big, max_rows=8)] == [0]
    assert take_batch(deque(), max_rows=8) == []


def test_concat_split_roundtrip(hospital):
    """Demux is the exact inverse of concat: slices come back
    row-identical and repairs re-base onto request-local indices."""
    dirty = hospital.dirty
    requests = [
        CleanRequest(0, dirty.slice_rows(0, 5)),
        CleanRequest(1, dirty.slice_rows(5, 12)),
        CleanRequest(2, dirty.slice_rows(12, 15)),
    ]
    combined = concat_tables(dirty.schema, [r.table for r in requests])
    assert combined == dirty.slice_rows(0, 15)
    name = dirty.schema.names[0]
    repairs = [
        Repair(1, name, "a", "b", 0.1, 0.9),
        Repair(4, name, "a", "b", 0.1, 0.9),
        Repair(6, name, "a", "b", 0.1, 0.9),
        Repair(14, name, "a", "b", 0.1, 0.9),
    ]
    split = split_results(requests, combined, repairs)
    assert [t.n_rows for t, _ in split] == [5, 7, 3]
    assert [[r.row for r in own] for _, own in split] == [[1, 4], [1], [2]]
    for (sliced, _), request in zip(split, requests):
        assert sliced == request.table


# -- input forms and lifecycle -------------------------------------------------


def test_submit_input_forms(hospital, request_tables, reference_results):
    engine = BClean(BCleanConfig.pip(), hospital.constraints)
    engine.fit(hospital.dirty)
    table = request_tables[0]
    names = table.schema.names
    as_rows = table.to_rows()
    as_dicts = [dict(zip(names, row)) for row in as_rows]
    with BCleanService(engine) as service:
        from_table = service.submit(table)
        from_rows = service.submit(as_rows)
        from_dicts = service.submit(as_dicts)
        empty = service.submit([])
        with pytest.raises(CleaningError, match="does not match"):
            wrong = Table.from_rows(
                hospital.dirty.schema.rename(
                    {names[0]: "not-a-fitted-attribute"}
                ),
                as_rows,
            )
            service.submit(wrong)
    _assert_identical(
        [from_table, from_rows, from_dicts], [reference_results[0]] * 3
    )
    assert empty.cleaned.n_rows == 0
    assert empty.repairs == []


def test_service_close_lifecycle(hospital):
    engine = BClean(BCleanConfig.pip(), hospital.constraints)
    engine.fit(hospital.dirty)
    service = BCleanService(engine)
    session = service.session
    assert engine.resident_session is session
    service.submit(hospital.dirty.slice_rows(0, 3))
    service.close()
    assert service.closed
    assert session.closed  # service ref + engine ref both dropped
    assert engine.resident_session is None
    service.close()  # idempotent
    with pytest.raises(CleaningError, match="closed"):
        service.submit(hospital.dirty.slice_rows(0, 3))


def test_service_can_leave_engine_session_open(hospital):
    engine = BClean(BCleanConfig.pip(), hospital.constraints)
    engine.fit(hospital.dirty)
    with BCleanService(engine, close_session_on_exit=False) as service:
        session = service.session
        service.submit(hospital.dirty.slice_rows(0, 3))
    assert not session.closed  # the engine's reference keeps it warm
    assert engine.resident_session is session
    engine.close_session()
    assert session.closed


def test_linger_coalesces_concurrent_submits(hospital, request_tables):
    """With a generous linger, requests racing in together land in few
    batches (not one per request) — and per-request results still come
    back correctly demultiplexed."""
    engine = BClean(BCleanConfig.pip(), hospital.constraints)
    engine.fit(hospital.dirty)
    barrier = threading.Barrier(N_REQUESTS)

    def submit(table):
        barrier.wait()
        return service.submit(table)

    with BCleanService(engine, linger_seconds=0.05) as service:
        with ThreadPoolExecutor(max_workers=N_REQUESTS) as pool:
            served = list(pool.map(submit, request_tables))
        diag = service.diagnostics()
    assert diag["requests"] == N_REQUESTS
    assert diag["batches"] < N_REQUESTS
    for table, result in zip(request_tables, served):
        assert result.cleaned.n_rows == table.n_rows
        assert result.diagnostics["serve"]["batch_requests"] >= 1
